//! Iterative modulo scheduling of innermost counted loops — software
//! pipelining for `sched_level` 2.
//!
//! For a loop in the canonical shape the compiler emits (header
//! `cmpi<lt|le> pd = vi, K` + `(!pd) br exit`, one straight-line body
//! block ending in the back branch — recognised by
//! [`patmos_lir::plir::CountedLoop`]), the pipeliner overlaps
//! successive iterations at a fixed **initiation interval** `II`:
//!
//! 1. **Bounds.** The *resource* bound counts issue slots (two per
//!    bundle under dual issue, slot-two legality respected, one row
//!    reserved for the loop-back branch); the *recurrence* bound reads
//!    the dependence relation of [`crate::dag`] extended with
//!    **loop-carried edges**: for every ordered op pair `(a, b)`,
//!    `dependence_gap(a, b)` also constrains `a` of iteration `k`
//!    against `b` of iteration `k+1` at distance one. `MII` is the max
//!    of the two (plus the structural floor the branch placement
//!    needs).
//! 2. **Iterative scheduling.** At each candidate `II` (from `MII`
//!    upward), ops are placed in critical-path priority order into a
//!    modulo reservation table; every placement respects both the
//!    same-iteration and the distance-one constraints against all
//!    already-placed ops. A failed placement bumps `II` and retries.
//! 3. **Lifetimes instead of renaming.** Patmos has no rotating
//!    registers, and after allocation no scratch registers either.
//!    Because *anti* and *output* dependences participate in the
//!    distance-one edges, every value's lifetime is provably bounded
//!    by `II` — iteration `k+1`'s redefinition cannot overtake
//!    iteration `k`'s last use — so the kernel needs no modulo
//!    variable expansion and no register renaming at all. (The cost:
//!    a long-lived value raises `II` rather than the register count —
//!    the right trade on a machine without rotating files.)
//! 4. **Code shape.** The loop becomes:
//!
//!    ```text
//!    .pipeloop head kernel fallback …         ; structured shape record
//!           cmpi<lt> pd = vi, K-(S-1)*step   ; guard: at least S trips?
//!           (!pd) br fallback                 ; else: run the plain loop
//!           …prologue…                        ; stages 0..S-2 fill
//!    .loopbound 1 max-S
//!    kernel:
//!           …II bundles…                      ; steady state, S stages deep
//!           (pd)  br kernel                   ; at row II-3: its two delay
//!                                             ; slots are the last rows
//!           …epilogue…                        ; stages 1..S-1 drain
//!           br exit
//!    .loopbound 1 max
//!    fallback:                                ; the original loop, list-
//!           …                                 ; scheduled (also runs the
//!    ```                                      ; guard-rejected cases)
//!
//!    The kernel's compare tests `vi < K - step` — one iteration of
//!    lookahead — so the back branch decides whether a *new* iteration
//!    may start while `S-1` older ones are still in flight; the guard
//!    proves the prologue's unconditional iteration starts exist. The
//!    fallback loop keeps the exact original semantics for short trip
//!    counts, including zero.
//!
//! Everything here reads the dependence *structure* plus the loop's
//! literal bound and step; reading literals is not shape-stable, so
//! single-path compilations never enable the pipeliner
//! ([`crate::SchedOptions::pipeline`] stays off).

use patmos_isa::{AluOp, Guard, Op, Reg};
use patmos_lir::plir::{CountedLoop, Item, LirInst, LirOp, LoopBoundSrc};

use crate::dag::{dependence_gap, out_gap, Func, LiveSet};
use crate::list;
use crate::{LoopReport, SchedBundle, SchedItem};

/// Candidate initiation intervals are searched up to this bound; a
/// partially unrolled body's memory chain alone can push `II` past 30.
const MAX_II: u32 = 48;
/// Deepest overlap considered. More stages buy little once the kernel
/// is saturated and cost prologue/epilogue code size linearly.
const MAX_STAGES: u32 = 4;
/// The `cmpi` immediate is 11-bit signed; adjusted bounds must fit.
const CMPI_IMM_RANGE: std::ops::RangeInclusive<i64> = -1024..=1023;

/// A pipelined loop, ready for emission.
pub(crate) struct Pipelined {
    /// The full item stream replacing the header and body blocks.
    pub(crate) items: Vec<SchedItem>,
    /// The per-loop report line.
    pub(crate) report: LoopReport,
    /// Bundles emitted (for the block report).
    pub(crate) bundles: usize,
    /// Bundles with a filled second slot.
    pub(crate) paired: usize,
}

/// One scheduled op: its absolute schedule time within an iteration
/// and the issue slot it reserves.
#[derive(Clone, Copy)]
struct Placed {
    t: u32,
    slot: usize,
}

/// The register allocator's assignable range (`r7`–`r28`); renamed
/// loop temporaries come from its unused part.
const ALLOC_FIRST: u8 = 7;
const ALLOC_LAST: u8 = 28;

/// Rewrites the registers an operation *reads* through `map`.
fn subst_uses(op: &mut LirOp, map: &[Reg; 32]) {
    let m = |r: &mut Reg| *r = map[r.index() as usize];
    match op {
        LirOp::Real(real) => match real {
            Op::AluR { rs1, rs2, .. } | Op::Mul { rs1, rs2 } | Op::Cmp { rs1, rs2, .. } => {
                m(rs1);
                m(rs2);
            }
            Op::AluI { rs1, .. } | Op::CmpI { rs1, .. } => m(rs1),
            Op::LoadImmHigh { rd, .. } => m(rd),
            Op::Load { ra, .. } | Op::MainLoad { ra, .. } => m(ra),
            Op::Store { ra, rs, .. } | Op::MainStore { ra, rs, .. } => {
                m(ra);
                m(rs);
            }
            Op::Mts { rs, .. } => m(rs),
            _ => {}
        },
        LirOp::BrLabel(_) | LirOp::CallFunc(_) | LirOp::LilSym(..) => {}
    }
}

/// Rewrites the register an operation *defines* to `to`.
fn subst_def(op: &mut LirOp, to: Reg) {
    match op {
        LirOp::Real(real) => match real {
            Op::AluR { rd, .. }
            | Op::AluI { rd, .. }
            | Op::LoadImmLow { rd, .. }
            | Op::LoadImmHigh { rd, .. }
            | Op::LoadImm32 { rd, .. }
            | Op::Load { rd, .. }
            | Op::MainWait { rd }
            | Op::Mfs { rd, .. } => *rd = to,
            _ => {}
        },
        LirOp::LilSym(rd, _) => *rd = to,
        LirOp::BrLabel(_) | LirOp::CallFunc(_) => {}
    }
}

/// Breaks allocator-induced false dependences inside the loop: every
/// unconditional definition of a register that is provably *loop
/// local* — dead at the loop's entry, body entry and exit, so its
/// whole live range sits inside one iteration — gets a fresh register
/// from `pool` (the allocator's unused registers), and the uses it
/// reaches follow. Without this, the linear-scan allocator's
/// aggressive reuse chains unrelated values through one register and
/// the resulting anti dependences force `II` up to the full iteration
/// span (no overlap). Runs out of fresh registers gracefully: later
/// definitions simply keep their current name, constraining `II`
/// instead of blocking pipelining.
///
/// With `reuse_aware` set, the pass trusts the allocator's actual
/// assignments instead of assuming worst-case reuse: only registers
/// opening *two or more* live ranges in the iteration (genuine reuse
/// chaining unrelated values) are renamed; a register carrying a
/// single range already is a dedicated name, renaming it would only
/// relabel the same dependence structure. Under the loop-aware
/// allocation policy, which round-robins iteration-local temporaries
/// over distinct registers, this shrinks the pass to (near) nothing.
///
/// Returns the number of definitions renamed to a fresh register.
fn rename_loop_temporaries(
    ops: &mut [LirInst],
    boundary_live: LiveSet,
    mut pool: Vec<Reg>,
    reuse_aware: bool,
) -> usize {
    // A register is renameable when its every definition here is
    // unconditional and it is dead at every loop boundary.
    let mut renameable = [false; 32];
    for r in ALLOC_FIRST..=ALLOC_LAST {
        renameable[r as usize] = !boundary_live.has_reg(Reg::from_index(r));
    }
    for op in ops.iter() {
        if let Some(d) = op.op.def() {
            if !op.guard.is_always() {
                renameable[d.index() as usize] = false;
            }
        }
    }

    // Range-opening definitions per register: a def that does not read
    // its own register starts a new value; two or more openings mean
    // the allocator reused the register for unrelated values.
    if reuse_aware {
        let mut openings = [0u32; 32];
        for inst in ops.iter() {
            if let Some(d) = inst.op.def() {
                if !inst.op.uses().into_iter().flatten().any(|u| u == d) {
                    openings[d.index() as usize] += 1;
                }
            }
        }
        for r in ALLOC_FIRST..=ALLOC_LAST {
            if openings[r as usize] < 2 {
                renameable[r as usize] = false;
            }
        }
    }

    let mut renamed = 0usize;
    let mut map: [Reg; 32] = std::array::from_fn(|i| Reg::from_index(i as u8));
    for inst in ops.iter_mut() {
        // Original def name and whether the op also reads it (an
        // update like `lih rd = …` or `add r = r, c` continues its
        // range rather than opening a new one).
        let orig_def = inst.op.def();
        let reads_own_def =
            orig_def.is_some_and(|d| inst.op.uses().into_iter().flatten().any(|u| u == d));
        subst_uses(&mut inst.op, &map);
        let Some(orig) = orig_def else { continue };
        if !renameable[orig.index() as usize] {
            continue;
        }
        if !reads_own_def {
            if let Some(fresh) = pool.pop() {
                map[orig.index() as usize] = fresh;
                renamed += 1;
            }
            // Pool exhausted: the def keeps its current mapping.
        }
        subst_def(&mut inst.op, map[orig.index() as usize]);
    }
    renamed
}

/// The `.loopbound` annotation among a block's head items.
fn head_bound(head: &[Item]) -> Option<(u32, u32)> {
    head.iter().find_map(|item| match item {
        Item::LoopBound { min, max } => Some((*min, *max)),
        _ => None,
    })
}

fn nop() -> LirInst {
    LirInst::always(LirOp::Real(Op::Nop))
}

/// Tries to software-pipeline the loop whose header is block `h` (body
/// block `h + 1`). Returns `None` when the shape does not match, no
/// feasible `II` exists, or pipelining would not beat the plain
/// list-scheduled loop.
pub(crate) fn try_pipeline(
    func: &Func,
    h: usize,
    dual_issue: bool,
    reuse_renaming: bool,
    live_in: &[LiveSet],
    remarks: &mut Vec<patmos_lir::Remark>,
) -> Option<Pipelined> {
    let mut refuse = |site: &str, message: String| {
        if std::env::var_os("PATMOS_MODULO_DEBUG").is_some() {
            eprintln!("{site}: {message}");
        }
        remarks.push(patmos_lir::Remark {
            pass: "modulo-sched",
            function: func.name.clone(),
            site: Some(site.to_string()),
            applied: false,
            message,
        });
    };
    // ---- shape ----
    if h == 0 || h + 1 >= func.blocks.len() {
        return None;
    }
    let hb = &func.blocks[h];
    let bb = &func.blocks[h + 1];
    if hb.labels.len() != 1 || !hb.has_loop_bound {
        return None;
    }
    let label = hb.labels[0].clone();
    let (min_ann, max_ann) = head_bound(&hb.head)?;
    let hterm = hb.term.as_ref()?;
    let bterm = bb.term.as_ref()?;
    let LirOp::BrLabel(exit_label) = &hterm.op else {
        return None;
    };
    let LirOp::BrLabel(back_label) = &bterm.op else {
        return None;
    };
    if back_label != &label || !bb.labels.is_empty() || bb.has_loop_bound {
        return None;
    }
    if func.label_refs(&label) != 1 || func.block_of_label(exit_label).is_none() {
        return None;
    }
    let cl = match CountedLoop::recognize(&hb.insts, hterm, &bb.insts, bterm) {
        Some(cl) => cl,
        None => {
            refuse(&label, "not a recognisable counted loop".into());
            return None;
        }
    };

    // Registers live at any loop boundary must keep their names; the
    // rest are iteration-local temporaries the renamer may spread over
    // the allocator's unused registers.
    let exit_block = func.block_of_label(exit_label).expect("checked above");
    let mut boundary_live = live_in[h];
    boundary_live.regs |= live_in[h + 1].regs | live_in[exit_block].regs;
    boundary_live.preds |= live_in[h + 1].preds | live_in[exit_block].preds;
    let mut used = [false; 32];
    for inst in hb.insts.iter().chain(bb.insts.iter()) {
        for r in inst.op.uses().into_iter().flatten().chain(inst.op.def()) {
            used[r.index() as usize] = true;
        }
    }
    let mut pool: Vec<Reg> = (ALLOC_FIRST..=ALLOC_LAST)
        .filter(|&r| !used[r as usize] && !boundary_live.has_reg(Reg::from_index(r)))
        .map(Reg::from_index)
        .collect();

    // ---- one iteration's ops ----
    // The kernel compare is the header compare with one iteration of
    // lookahead folded in: `vi < K - step` now means "the *next*
    // iteration exists". It reads pre-increment `vi`, so it keeps the
    // header's program-order position: first. A literal bound adjusts
    // in the immediate; a register bound reads a spare register the
    // guard block computes once (`kb2 = K - step`, and `kb1 =
    // K - (S-1)*step` for the guard test itself).
    let bound_regs = match cl.bound {
        LoopBoundSrc::Imm(k) => {
            if !CMPI_IMM_RANGE.contains(&(k as i64 - cl.step as i64)) {
                return None;
            }
            None
        }
        LoopBoundSrc::Reg(k) => {
            if pool.len() < 2 || cl.step > 2047 {
                refuse(
                    &label,
                    format!("no spare bound registers (pool {})", pool.len()),
                );
                return None;
            }
            let kb2 = pool.remove(0);
            let kb1 = pool.remove(0);
            Some((k, kb1, kb2))
        }
    };
    let kern_cmp = match (cl.bound, bound_regs) {
        (LoopBoundSrc::Imm(k), _) => Op::CmpI {
            op: cl.cmp_op,
            pd: cl.pd,
            rs1: cl.vi,
            imm: (k as i64 - cl.step as i64) as i16,
        },
        (LoopBoundSrc::Reg(_), Some((_, _, kb2))) => Op::Cmp {
            op: cl.cmp_op,
            pd: cl.pd,
            rs1: cl.vi,
            rs2: kb2,
        },
        (LoopBoundSrc::Reg(_), None) => unreachable!("reserved above"),
    };
    let mut ops: Vec<LirInst> = Vec::with_capacity(bb.insts.len() + 1);
    ops.push(LirInst::always(LirOp::Real(kern_cmp)));
    ops.extend(bb.insts.iter().cloned());
    let n = ops.len();
    let cmp_idx = 0usize;
    let renamed = rename_loop_temporaries(&mut ops, boundary_live, pool, reuse_renaming);

    // ---- dependence relations ----
    // d0[i][j] (i < j): minimum gap within one iteration.
    // d1[i][j] (any i, j): minimum gap from op i of iteration k to op
    // j of iteration k+1 — every dependence class becomes a
    // loop-carried edge, which is what bounds lifetimes to II.
    let gap = |a: usize, b: usize| dependence_gap(&ops[a], &ops[b]);
    let slots = if dual_issue { 2usize } else { 1 };
    let slot1_only = |op: &LirInst| !op.op.allowed_in_second_slot() || op.op.is_long();

    // ---- MII ----
    let n_slot1: u32 = ops.iter().filter(|o| slot1_only(o)).count() as u32;
    let width: u32 = ops.iter().map(|o| if o.op.is_long() { 2 } else { 1 }).sum();
    let res_mii = (n_slot1 + 1).max(width.div_ceil(slots as u32) + 1);
    let mut rec_mii = 0u32;
    for i in 0..n {
        if let Some(g) = gap(i, i) {
            rec_mii = rec_mii.max(g);
        }
        for j in i + 1..n {
            if let (Some(g0), Some(g1)) = (gap(i, j), gap(j, i)) {
                rec_mii = rec_mii.max(g0 + g1);
            }
        }
    }
    // Structural floor: the back branch sits at row II-3 (its two
    // delay slots are the last rows) and the compare needs an earlier
    // row of stage 0.
    let mii = res_mii.max(rec_mii).max(4);

    // Critical-path priority over the same-iteration DAG.
    let mut height: Vec<u32> = ops.iter().map(|o| out_gap(o).max(1)).collect();
    for i in (0..n).rev() {
        for j in i + 1..n {
            if let Some(g) = gap(i, j) {
                height[i] = height[i].max(g + height[j]);
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));

    // The plain per-iteration cost the pipeline has to beat.
    let baseline = list::schedule_block(&hb.insts, Some(hterm), dual_issue)
        .bundles
        .len()
        + list::schedule_block(&bb.insts, Some(bterm), dual_issue)
            .bundles
            .len();

    // ---- iterative scheduling (Rau's IMS) ----
    // At each candidate II, ops are placed at their earliest legal
    // time; a placement that conflicts — on a reservation slot or on a
    // dependence window — evicts the offender back into the worklist,
    // and re-placing an op at or before its previous time bumps it one
    // later (Rau's progress rule). A fixed budget of placements bounds
    // the backtracking. Critical-path priority fills resources best,
    // but it is blind to loop-carried recurrences; program order
    // follows them naturally — try both before bumping II.
    let program_order: Vec<usize> = (0..n).collect();
    'next_ii: for ii in mii..=MAX_II {
        let times = match [&order, &program_order]
            .into_iter()
            .find_map(|ord| place_all(&ops, ord, ii, slots, cmp_idx))
        {
            Some(times) => times,
            None => continue 'next_ii,
        };
        let span = times.iter().map(|p| p.t).max().unwrap_or(0);
        // A single stage is the degenerate-but-useful case: header and
        // body merge into one rotated block, the back branch's delay
        // slots carry iteration work, and the guard reduces to the
        // original entry test.
        let stages = span / ii + 1;
        if stages > MAX_STAGES {
            continue 'next_ii;
        }
        let adjust = (stages as i64 - 1) * cl.step as i64;
        match cl.bound {
            LoopBoundSrc::Imm(k) => {
                if !CMPI_IMM_RANGE.contains(&(k as i64 - adjust)) {
                    continue 'next_ii;
                }
            }
            // The guard's `addi` must encode the adjustment.
            LoopBoundSrc::Reg(_) => {
                if adjust > 2047 {
                    continue 'next_ii;
                }
            }
        }

        // ---- benefit ----
        // Estimated at the annotated worst-case trip count: the kernel
        // must win back the guard, the fill/drain ramps, the exit
        // detour, *and* the cold method-cache fill of the grown code
        // (prologue, epilogue and the fallback copy) — with a 10%
        // margin, because everything here is an estimate and a
        // marginal pipeline is not worth the code.
        let trips = max_ann.saturating_sub(1) as i64;
        let s = stages as i64;
        if trips < s + 1 {
            refuse(
                &label,
                format!("worst-case trip count {trips} cannot fill {stages} stage(s)"),
            );
            return None;
        }
        let ramp = 2 * (s - 1) * ii as i64;
        let code_growth = (ramp + baseline as i64 + 12) * 3 / 2;
        let pipelined = 4 + ramp + (trips - s + 1) * ii as i64 + 6 + code_growth;
        let plain = trips * baseline as i64 + 3;
        if pipelined * 10 >= plain * 9 {
            refuse(
                &label,
                format!(
                    "no benefit at II {ii}: {stages} stage(s), estimated {pipelined} cycles \
                     pipelined vs {plain} plain over {trips} worst-case trips"
                ),
            );
            return None;
        }

        let mut p = emit(
            func, h, &cl, bound_regs, &label, exit_label, &ops, &times, ii, stages, mii, min_ann,
            max_ann, dual_issue,
        );
        p.report.renamed = renamed;
        return Some(p);
    }
    None
}

/// Places every op at a legal `(time, slot)` for the given `II` and
/// placement order, or gives up within a bounded number of evictions.
/// The returned schedule satisfies every same-iteration and
/// distance-one constraint (re-verified exhaustively before
/// returning).
fn place_all(
    ops: &[LirInst],
    order: &[usize],
    ii: u32,
    slots: usize,
    cmp_idx: usize,
) -> Option<Vec<Placed>> {
    let n = ops.len();
    let gap = |a: usize, b: usize| dependence_gap(&ops[a], &ops[b]);
    let slot1_only = |op: &LirInst| !op.op.allowed_in_second_slot() || op.op.is_long();
    let br_row = ii - 1 - patmos_isa::timing::BRANCH_DELAY_COND;
    let horizon = (MAX_STAGES * ii - 1) as i64;

    let mut table: Vec<Vec<Option<usize>>> = vec![vec![None; slots]; ii as usize];
    let mut placed: Vec<Option<Placed>> = vec![None; n];
    let mut prev_time: Vec<Option<i64>> = vec![None; n];
    let mut budget = 16 * n as i64;

    let clear = |table: &mut Vec<Vec<Option<usize>>>, idx: usize| {
        for row in table.iter_mut() {
            for s in row.iter_mut() {
                if *s == Some(idx) {
                    *s = None;
                }
            }
        }
    };

    // Highest-priority unplaced op each round.
    while let Some(&idx) = order.iter().find(|&&i| placed[i].is_none()) {
        budget -= 1;
        if budget < 0 {
            return None;
        }
        // Earliest start from every placed op, in both dependence
        // classes (lower bounds only; upper bounds are enforced by
        // eviction after the fact).
        let mut lo: i64 = 0;
        for (x, px) in placed.iter().enumerate() {
            let Some(px) = px else { continue };
            let (tx, t) = (px.t as i64, ii as i64);
            if x < idx {
                if let Some(g) = gap(x, idx) {
                    lo = lo.max(tx + g as i64);
                }
            }
            if let Some(g) = gap(x, idx) {
                lo = lo.max(tx + g as i64 - t);
            }
        }
        if let Some(pt) = prev_time[idx] {
            if lo <= pt {
                lo = pt + 1;
            }
        }
        let hard_hi: i64 = if idx == cmp_idx {
            // Stage 0, strictly before the branch row, with room for
            // the predicate RAW gap into the branch.
            (br_row - 1) as i64
        } else {
            horizon
        };
        if lo > hard_hi {
            return None;
        }
        let long = ops[idx].op.is_long();
        let needs_slot1 = slot1_only(&ops[idx]);
        // First choice: a resource-free row within one II of the
        // earliest start.
        let mut chosen: Option<Placed> = None;
        't: for t in lo..=(lo + ii as i64 - 1).min(hard_hi) {
            let row = (t % ii as i64) as usize;
            if row as u32 == br_row {
                continue;
            }
            if table[row][0].is_none() {
                if long && !table[row].iter().all(Option::is_none) {
                    continue;
                }
                chosen = Some(Placed {
                    t: t as u32,
                    slot: 0,
                });
                break 't;
            }
            if !long
                && !needs_slot1
                && slots == 2
                && table[row][1].is_none()
                && !ops[table[row][0].expect("occupied")].op.is_long()
            {
                chosen = Some(Placed {
                    t: t as u32,
                    slot: 1,
                });
                break 't;
            }
        }
        // Forced placement at the earliest start: evict whatever holds
        // the slot.
        let p = chosen.unwrap_or_else(|| {
            let mut t = lo;
            if (t % ii as i64) as u32 == br_row {
                t += 1;
            }
            Placed {
                t: t as u32,
                slot: 0,
            }
        });
        if p.t as i64 > hard_hi {
            return None;
        }
        let row = (p.t % ii) as usize;
        // Evict resource conflicts.
        let occupants: Vec<usize> = table[row].iter().flatten().copied().collect();
        for x in occupants {
            let conflict = if long {
                true
            } else {
                table[row][p.slot] == Some(x) || ops[x].op.is_long()
            };
            if conflict {
                clear(&mut table, x);
                placed[x] = None;
            }
        }
        table[row][p.slot] = Some(idx);
        if long {
            for s in table[row].iter_mut().skip(1) {
                *s = Some(idx);
            }
        }
        placed[idx] = Some(p);
        prev_time[idx] = Some(p.t as i64);
        // Evict dependence-window violations against the new
        // placement, in both classes and directions.
        let ti = p.t as i64;
        let mut dep_evict: Vec<usize> = Vec::new();
        for (x, px) in placed.iter().enumerate() {
            if x == idx {
                continue;
            }
            let Some(px) = px else { continue };
            let (tx, t) = (px.t as i64, ii as i64);
            let mut bad = false;
            if x < idx {
                if let Some(g) = gap(x, idx) {
                    bad |= ti - tx < g as i64;
                }
            } else if let Some(g) = gap(idx, x) {
                bad |= tx - ti < g as i64;
            }
            if let Some(g) = gap(x, idx) {
                bad |= ti + t - tx < g as i64;
            }
            if let Some(g) = gap(idx, x) {
                bad |= tx + t - ti < g as i64;
            }
            if bad {
                dep_evict.push(x);
            }
        }
        for x in dep_evict {
            clear(&mut table, x);
            placed[x] = None;
        }
    }

    // All placed: re-verify every constraint exhaustively (belt and
    // braces — placement already enforced them pairwise).
    let times: Vec<Placed> = placed.iter().map(|&p| p.expect("all placed")).collect();
    for i in 0..n {
        for j in 0..n {
            let (ti, tj) = (times[i].t as i64, times[j].t as i64);
            if i < j {
                if let Some(g) = gap(i, j) {
                    if tj - ti < g as i64 {
                        return None;
                    }
                }
            }
            if let Some(g) = gap(i, j) {
                if tj + ii as i64 - ti < g as i64 {
                    return None;
                }
            }
        }
    }
    Some(times)
}

/// Builds the replacement item stream for a scheduled loop.
#[allow(clippy::too_many_arguments)]
fn emit(
    func: &Func,
    h: usize,
    cl: &CountedLoop,
    bound_regs: Option<(Reg, Reg, Reg)>,
    label: &str,
    exit_label: &str,
    ops: &[LirInst],
    times: &[Placed],
    ii: u32,
    stages: u32,
    mii: u32,
    min_ann: u32,
    max_ann: u32,
    dual_issue: bool,
) -> Pipelined {
    let hb = &func.blocks[h];
    let bb = &func.blocks[h + 1];
    let kern_label = format!("{label}_mk");
    let fb_label = format!("{label}_mf");
    let br_row = ii - 1 - patmos_isa::timing::BRANCH_DELAY_COND;
    let n = ops.len();
    let row_of = |i: usize| times[i].t % ii;
    let stage_of = |i: usize| times[i].t / ii;

    let mut items: Vec<SchedItem> = Vec::new();
    let mut bundles = 0usize;
    let mut paired = 0usize;
    let mut push_bundle = |items: &mut Vec<SchedItem>, first: LirInst, second: Option<LirInst>| {
        bundles += 1;
        if second.is_some() {
            paired += 1;
        }
        items.push(SchedItem::Bundle(SchedBundle { first, second }));
    };

    // Original head markers minus the `.loopbound` (fresh bounds are
    // attached to the kernel and fallback loops below).
    for item in &hb.head {
        if let Item::Label(l) = item {
            items.push(SchedItem::Label(l.clone()));
        }
    }
    // The `.pipeloop` record lands here, once the prologue/epilogue
    // bundle counts are known.
    let pipeinfo_at = items.len();

    // Guard: enough trips for the prologue's unconditional starts?
    let guard_cmp = match (cl.bound, bound_regs) {
        (LoopBoundSrc::Imm(k), _) => Op::CmpI {
            op: cl.cmp_op,
            pd: cl.pd,
            rs1: cl.vi,
            imm: (k as i64 - (stages as i64 - 1) * cl.step as i64) as i16,
        },
        (LoopBoundSrc::Reg(_), Some((k, kb1, kb2))) => {
            // The adjusted bounds are computed once, into spare
            // registers: `kb2` feeds the kernel's lookahead compare,
            // `kb1` the guard (when any prologue exists).
            push_bundle(
                &mut items,
                LirInst::always(LirOp::Real(Op::AluI {
                    op: AluOp::Add,
                    rd: kb2,
                    rs1: k,
                    imm: (-(cl.step as i64)) as i16,
                })),
                None,
            );
            let guard_src = if stages > 1 {
                push_bundle(
                    &mut items,
                    LirInst::always(LirOp::Real(Op::AluI {
                        op: AluOp::Add,
                        rd: kb1,
                        rs1: k,
                        imm: (-((stages as i64 - 1) * cl.step as i64)) as i16,
                    })),
                    None,
                );
                kb1
            } else {
                k
            };
            Op::Cmp {
                op: cl.cmp_op,
                pd: cl.pd,
                rs1: cl.vi,
                rs2: guard_src,
            }
        }
        (LoopBoundSrc::Reg(_), None) => unreachable!("reserved by the caller"),
    };
    push_bundle(&mut items, LirInst::always(LirOp::Real(guard_cmp)), None);
    push_bundle(
        &mut items,
        LirInst::new(Guard::unless(cl.pd), LirOp::BrLabel(fb_label.clone())),
        None,
    );
    for _ in 0..patmos_isa::timing::BRANCH_DELAY_COND {
        push_bundle(&mut items, nop(), None);
    }

    // One emitted row: the ops reserved at `row` whose stage passes
    // `keep`, in slot order.
    let row_bundle = |row: u32, keep: &dyn Fn(u32) -> bool| -> (LirInst, Option<LirInst>) {
        let mut first: Option<LirInst> = None;
        let mut second: Option<LirInst> = None;
        for (i, op) in ops.iter().enumerate().take(n) {
            if row_of(i) != row || !keep(stage_of(i)) {
                continue;
            }
            if times[i].slot == 0 {
                first = Some(op.clone());
            } else {
                second = Some(op.clone());
            }
        }
        match (first, second) {
            (Some(f), s) => (f, s),
            (None, Some(s)) => (s, None),
            (None, None) => (nop(), None),
        }
    };

    // Prologue: absolute cycles 0 .. (S-1)*II — round p runs the ops
    // whose stage has already started (stage ≤ p).
    let prologue_len = ((stages - 1) * ii) as usize;
    for c in 0..prologue_len as u32 {
        let (round, row) = (c / ii, c % ii);
        let (f, s) = row_bundle(row, &|stage| stage <= round);
        push_bundle(&mut items, f, s);
    }

    // Kernel: II rows, every stage live, the back branch at its fixed
    // row with the last two rows as its delay slots.
    items.push(SchedItem::LoopBound {
        min: 1,
        max: max_ann.saturating_sub(stages).max(1),
    });
    items.push(SchedItem::Label(kern_label.clone()));
    for row in 0..ii {
        if row == br_row {
            push_bundle(
                &mut items,
                LirInst::new(Guard::when(cl.pd), LirOp::BrLabel(kern_label.clone())),
                None,
            );
        } else {
            let (f, s) = row_bundle(row, &|_| true);
            push_bundle(&mut items, f, s);
        }
    }
    let kernel_len = ii as usize;

    // Epilogue: rounds 1..S-1 drain the stages still in flight, then
    // padding lets every trailing visible delay elapse before the exit
    // branch.
    let mut epilogue_len = 0usize;
    for e in 1..stages {
        for row in 0..ii {
            let (f, s) = row_bundle(row, &|stage| stage >= e);
            push_bundle(&mut items, f, s);
            epilogue_len += 1;
        }
    }
    let needed = (0..n)
        .filter(|&i| stage_of(i) >= 1)
        .map(|i| ((stage_of(i) - 1) * ii + row_of(i) + out_gap(&ops[i])) as usize)
        .max()
        .unwrap_or(0);
    while epilogue_len < needed {
        push_bundle(&mut items, nop(), None);
        epilogue_len += 1;
    }
    push_bundle(
        &mut items,
        LirInst::always(LirOp::BrLabel(exit_label.to_string())),
        None,
    );
    for _ in 0..patmos_isa::timing::BRANCH_DELAY_UNCOND {
        push_bundle(&mut items, nop(), None);
    }

    // Fallback: the original loop, relabelled and list-scheduled — it
    // runs the short-trip cases the guard rejects.
    items.push(SchedItem::LoopBound {
        min: 1,
        max: max_ann,
    });
    items.push(SchedItem::Label(fb_label.clone()));
    let head_sched = list::schedule_block(&hb.insts, Some(hterm_for(func, h)), dual_issue);
    for (f, s) in head_sched.bundles {
        push_bundle(&mut items, f, s);
    }
    let fb_back = LirInst::always(LirOp::BrLabel(fb_label));
    let body_sched = list::schedule_block(&bb.insts, Some(&fb_back), dual_issue);
    for (f, s) in body_sched.bundles {
        push_bundle(&mut items, f, s);
    }

    // The structured record the WCET analysis resolves: the guard
    // passes exactly when the loop runs at least `stages` trips, so
    // the fallback never executes its header more than `stages` times
    // per entry — and never at all when the `.loopbound` min already
    // proves that many trips.
    items.insert(
        pipeinfo_at,
        SchedItem::PipeLoop {
            guard: label.to_string(),
            kernel: kern_label.clone(),
            fallback: format!("{label}_mf"),
            ii,
            stages,
            prologue: prologue_len as u32,
            epilogue: epilogue_len as u32,
            threshold: stages,
            min_trips: min_ann.saturating_sub(1),
        },
    );

    let report = LoopReport {
        label: label.to_string(),
        ops: n,
        mii,
        ii,
        stages,
        prologue: prologue_len,
        kernel: kernel_len,
        epilogue: epilogue_len,
        renamed: 0, // filled in by the caller, which ran the renamer
    };
    Pipelined {
        items,
        report,
        bundles,
        paired,
    }
}

fn hterm_for(func: &Func, h: usize) -> &LirInst {
    func.blocks[h]
        .term
        .as_ref()
        .expect("header has a terminator")
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::{AccessSize, AluOp, CmpOp, MemArea, Pred, Reg};
    use patmos_lir::plir::Module;

    fn alu(rd: u8, rs1: u8, rs2: u8) -> LirInst {
        LirInst::always(LirOp::Real(Op::AluR {
            op: AluOp::Add,
            rd: Reg::from_index(rd),
            rs1: Reg::from_index(rs1),
            rs2: Reg::from_index(rs2),
        }))
    }

    fn load(rd: u8, ra: u8) -> LirInst {
        LirInst::always(LirOp::Real(Op::Load {
            area: MemArea::Static,
            size: AccessSize::Word,
            rd: Reg::from_index(rd),
            ra: Reg::from_index(ra),
            offset: 0,
        }))
    }

    fn addi(rd: u8, rs1: u8, imm: i16) -> LirInst {
        LirInst::always(LirOp::Real(Op::AluI {
            op: AluOp::Add,
            rd: Reg::from_index(rd),
            rs1: Reg::from_index(rs1),
            imm,
        }))
    }

    /// A dot-product-shaped counted loop over physical LIR:
    /// `for (r7 = 0; r7 < 60; r7++) { r9 = mem[r8]; r10 += r9; r8 += 4 }`.
    fn counted_module(bound_max: u32) -> Module {
        Module {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                Item::FuncStart("main".into()),
                Item::Inst(alu(7, 0, 0)),
                Item::Inst(alu(8, 0, 0)),
                Item::Inst(alu(10, 0, 0)),
                Item::LoopBound {
                    min: 1,
                    max: bound_max,
                },
                Item::Label("main_head1".into()),
                Item::Inst(LirInst::always(LirOp::Real(Op::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: Reg::from_index(7),
                    imm: 60,
                }))),
                Item::Inst(LirInst::new(
                    Guard::unless(Pred::P6),
                    LirOp::BrLabel("main_exit2".into()),
                )),
                Item::Inst(load(9, 8)),
                Item::Inst(alu(10, 10, 9)),
                Item::Inst(addi(8, 8, 4)),
                Item::Inst(addi(7, 7, 1)),
                Item::Inst(LirInst::always(LirOp::BrLabel("main_head1".into()))),
                Item::Label("main_exit2".into()),
                Item::Inst(alu(1, 10, 0)),
                Item::Inst(LirInst::always(LirOp::Real(Op::Halt))),
            ],
        }
    }

    fn pipeline(module: &Module) -> Option<Pipelined> {
        let split = crate::dag::split_blocks(module);
        let func = &split.funcs[0];
        let live = crate::dag::live_in_sets(func);
        try_pipeline(func, 1, true, false, &live, &mut Vec::new())
    }

    #[test]
    fn counted_loop_pipelines_with_a_small_ii() {
        let p = pipeline(&counted_module(61)).expect("loop pipelines");
        assert!(p.report.ii >= p.report.mii);
        assert!(p.report.stages >= 1);
        // The kernel is exactly II bundles and beats the plain
        // per-iteration cost by construction of the benefit check.
        assert_eq!(p.report.kernel as u32, p.report.ii);
        // Exactly one conditional kernel branch, at row II-3.
        let kernel_at = p
            .items
            .iter()
            .position(|i| matches!(i, SchedItem::Label(l) if l == "main_head1_mk"))
            .expect("kernel label");
        let mut row = 0u32;
        for item in &p.items[kernel_at + 1..] {
            let SchedItem::Bundle(b) = item else { break };
            if matches!(&b.first.op, LirOp::BrLabel(l) if l == "main_head1_mk") {
                assert_eq!(row, p.report.ii - 3, "branch two rows before the end");
                assert!(!b.first.guard.is_always() && !b.first.guard.negate);
            }
            row += 1;
            if row == p.report.ii {
                break;
            }
        }
    }

    #[test]
    fn every_schedule_respects_loop_carried_gaps() {
        let p = pipeline(&counted_module(61)).expect("loop pipelines");
        // Walk the emitted bundle stream of the whole pipelined region
        // (guard + prologue + one kernel round + epilogue): between
        // any two bundles, the dependence gap of their ops must hold.
        let mut linear: Vec<(usize, LirInst)> = Vec::new();
        let mut pos = 0usize;
        let mut kernel_start: Option<usize> = None;
        for item in &p.items {
            match item {
                SchedItem::Label(l) if l.ends_with("_mk") => kernel_start = Some(pos),
                SchedItem::Label(l) if l.ends_with("_mf") => break,
                SchedItem::Bundle(b) => {
                    for op in [Some(&b.first), b.second.as_ref()].into_iter().flatten() {
                        if !matches!(op.op, LirOp::Real(Op::Nop)) && !op.op.is_flow() {
                            linear.push((pos, op.clone()));
                        }
                    }
                    pos += 1;
                }
                _ => {}
            }
        }
        for (ai, (pa, a)) in linear.iter().enumerate() {
            for (pb, b) in linear.iter().skip(ai + 1) {
                if pa == pb {
                    continue; // same bundle: reads see pre-state
                }
                if let Some(g) = dependence_gap(a, b) {
                    assert!(
                        pb - pa >= g as usize,
                        "gap {g} violated between {} @{pa} and {} @{pb}",
                        a.render(),
                        b.render()
                    );
                }
            }
        }
        // The kernel wraps: every op of round r+1 (the same bundles,
        // II later) must respect the gap from every op of round r.
        let ks = kernel_start.expect("kernel label present");
        let ii = p.report.ii as usize;
        let kernel: Vec<(usize, &LirInst)> = linear
            .iter()
            .filter(|(q, _)| *q >= ks && *q < ks + ii)
            .map(|(q, op)| (*q, op))
            .collect();
        for &(pa, a) in &kernel {
            for &(pb, b) in &kernel {
                if let Some(g) = dependence_gap(a, b) {
                    assert!(
                        pb + ii - pa >= g as usize,
                        "loop-carried gap {g} violated between {} @{pa} and {} @+{pb}",
                        a.render(),
                        b.render()
                    );
                }
            }
        }
    }

    #[test]
    fn short_annotated_trip_count_rejects_pipelining() {
        // One worst-case trip: the guard and exit detour can never pay
        // for themselves.
        assert!(pipeline(&counted_module(2)).is_none());
    }

    #[test]
    fn body_touching_the_exit_predicate_rejects_pipelining() {
        let mut m = counted_module(61);
        // Guard a body op with p6.
        m.items[8] = Item::Inst(LirInst::new(
            Guard::when(Pred::P6),
            LirOp::Real(Op::AluR {
                op: AluOp::Add,
                rd: Reg::from_index(9),
                rs1: Reg::from_index(9),
                rs2: Reg::from_index(9),
            }),
        ));
        assert!(pipeline(&m).is_none());
    }

    #[test]
    fn register_bound_pipelines_via_spare_bound_registers() {
        let mut m = counted_module(61);
        // Swap the header compare for a register bound held in r11,
        // initialised before the loop.
        m.items[6] = Item::Inst(LirInst::always(LirOp::Real(Op::Cmp {
            op: CmpOp::Lt,
            pd: Pred::P6,
            rs1: Reg::from_index(7),
            rs2: Reg::from_index(11),
        })));
        m.items.insert(
            4,
            Item::Inst(LirInst::always(LirOp::Real(Op::LoadImmLow {
                rd: Reg::from_index(11),
                imm: 60,
            }))),
        );
        let p = pipeline(&m).expect("register-bound loop pipelines");
        // The guard block computes the adjusted bounds once: at least
        // the kernel's lookahead bound `K - step`.
        let adjusts = p
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    SchedItem::Bundle(b) if matches!(
                        b.first.op,
                        LirOp::Real(Op::AluI { op: AluOp::Add, imm, .. }) if imm < 0
                    )
                )
            })
            .count();
        assert!(adjusts >= 1, "guard computes K - step into a spare reg");
        // The kernel compare reads a register bound.
        assert!(p.items.iter().any(|i| matches!(
            i,
            SchedItem::Bundle(b) if matches!(b.first.op, LirOp::Real(Op::Cmp { .. }))
                || b.second.as_ref().is_some_and(
                    |s| matches!(s.op, LirOp::Real(Op::Cmp { .. })))
        )));
    }
}
