//! Property test: random instruction streams survive the
//! text → image → disassembly → image cycle, plus directed error-path
//! tests of the assembler.

use proptest::prelude::*;

use patmos_asm::{assemble, disassemble};
use patmos_isa::{encode, AluOp, Bundle, Inst, Op, Pred, Reg};

fn arb_simple_inst() -> impl Strategy<Value = Inst> {
    // Instructions whose Display form the assembler accepts verbatim
    // (no labels or symbols involved).
    prop_oneof![
        Just(Inst::always(Op::Nop)),
        (
            0u8..32,
            0u8..32,
            0u8..32,
            prop::sample::select(AluOp::ALL.to_vec())
        )
            .prop_map(|(d, a, b, op)| Inst::always(Op::AluR {
                op,
                rd: Reg::from_index(d),
                rs1: Reg::from_index(a),
                rs2: Reg::from_index(b),
            })),
        (
            0u8..32,
            0u8..32,
            -2048i16..=2047,
            prop::sample::select(AluOp::ALL.to_vec())
        )
            .prop_map(|(d, a, imm, op)| Inst::always(Op::AluI {
                op,
                rd: Reg::from_index(d),
                rs1: Reg::from_index(a),
                imm,
            })),
        (0u8..32, any::<i16>()).prop_map(|(d, imm)| Inst::always(Op::LoadImmLow {
            rd: Reg::from_index(d),
            imm: imm as u16,
        })),
        (1u8..8, 0u8..32, -1024i16..=1023).prop_map(|(p, a, imm)| Inst::always(Op::CmpI {
            op: patmos_isa::CmpOp::Lt,
            pd: Pred::from_index(p),
            rs1: Reg::from_index(a),
            imm,
        })),
    ]
}

proptest! {
    #[test]
    fn rendered_instructions_reassemble_to_the_same_bits(
        insts in prop::collection::vec(arb_simple_inst(), 1..24),
    ) {
        let mut source = String::from("        .func main\n");
        let mut expected: Vec<u32> = Vec::new();
        for inst in &insts {
            source.push_str(&format!("        {inst}\n"));
            expected.extend(encode(&Bundle::single(*inst)));
        }
        source.push_str("        halt\n");
        expected.extend(encode(&Bundle::single(Inst::always(Op::Halt))));

        let image = assemble(&source).expect("rendered instructions assemble");
        prop_assert_eq!(image.code(), &expected[..]);

        // Disassembly renders back to lines that mention each mnemonic.
        let text = disassemble(image.code()).expect("disassembles");
        prop_assert_eq!(text.lines().count(), insts.len() + 1);
    }
}

#[test]
fn undefined_symbol_is_reported() {
    let err = assemble("        .func main\n        br nowhere\n        nop\n        halt\n")
        .unwrap_err();
    assert!(err.message.contains("undefined symbol"), "{err}");
}

#[test]
fn duplicate_label_is_reported() {
    let err = assemble("        .func main\nx:\n        nop\nx:\n        halt\n").unwrap_err();
    assert!(err.message.contains("duplicate"), "{err}");
}

#[test]
fn two_memory_ops_cannot_share_a_bundle() {
    let err = assemble(
        "        .func main\n        { lws r1 = [r0 + 0] ; lws r2 = [r0 + 1] }\n        halt\n",
    )
    .unwrap_err();
    assert!(err.message.contains("second issue slot"), "{err}");
}

#[test]
fn conflicting_bundle_writes_rejected() {
    let err = assemble(
        "        .func main\n        { add r1 = r2, r3 ; add r1 = r4, r5 }\n        halt\n",
    )
    .unwrap_err();
    assert!(err.message.contains("same register"), "{err}");
}

#[test]
fn data_directives_require_a_segment() {
    let err = assemble("        .word 1, 2\n        .func main\n        halt\n").unwrap_err();
    assert!(err.message.contains(".data"), "{err}");
}

#[test]
fn instructions_require_a_function() {
    let err = assemble("        nop\n").unwrap_err();
    assert!(err.message.contains(".func"), "{err}");
}

#[test]
fn loop_bound_with_min_above_max_rejected() {
    let err = assemble("        .func main\n        .loopbound 5 2\n        halt\n").unwrap_err();
    assert!(err.message.contains("min exceeds max"), "{err}");
}

#[test]
fn word_directive_accepts_symbols() {
    let image = assemble(
        "        .data a 0x10000\n        .word 1\n        .data b 0x10100\n        .word a\n        .func main\n        halt\n",
    )
    .expect("assembles");
    let b = &image.data()[1];
    assert_eq!(&b.bytes[0..4], &0x10000u32.to_le_bytes());
}
