//! Disassembler round trip: for every `Op` variant, rendered text must
//! reassemble to the identical encoding.
//!
//! Two directions are covered:
//!
//! * straight-line variants: a program containing one instance of every
//!   non-pc-relative operation is assembled, disassembled, and the
//!   disassembly (addresses stripped) reassembled — the code words must
//!   match bit for bit;
//! * pc-relative flow (`br`, `call`): the disassembler prints relative
//!   word offsets while the assembler resolves absolute targets, so the
//!   round trip rebases each offset against its bundle address before
//!   reassembling.

use patmos_asm::{assemble, disassemble};
use patmos_isa::{
    encode, AccessSize, AluOp, Bundle, CmpOp, Inst, MemArea, Op, Pred, PredOp, PredSrc, Reg,
    SpecialReg,
};

fn r(i: u8) -> Reg {
    Reg::from_index(i)
}

/// One instance of every `Op` variant except the pc-relative `Br` and
/// `Call` (covered by `flow_offsets_rebase_and_round_trip`).
fn straight_line_variants() -> Vec<Inst> {
    let mut insts = vec![Inst::always(Op::Nop)];
    // Every ALU function, register and immediate form.
    for op in AluOp::ALL {
        insts.push(Inst::always(Op::AluR {
            op,
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
        }));
        insts.push(Inst::always(Op::AluI {
            op,
            rd: r(4),
            rs1: r(5),
            imm: -7,
        }));
    }
    insts.push(Inst::always(Op::Mul {
        rs1: r(6),
        rs2: r(7),
    }));
    insts.push(Inst::always(Op::LoadImmLow {
        rd: r(8),
        imm: -1234i16 as u16,
    }));
    insts.push(Inst::always(Op::LoadImmHigh {
        rd: r(9),
        imm: 0xbeef,
    }));
    insts.push(Inst::always(Op::LoadImm32 {
        rd: r(10),
        imm: 0xdead_beef,
    }));
    // Every comparison, register and immediate form.
    for op in CmpOp::ALL {
        insts.push(Inst::always(Op::Cmp {
            op,
            pd: Pred::P1,
            rs1: r(11),
            rs2: r(12),
        }));
        insts.push(Inst::always(Op::CmpI {
            op,
            pd: Pred::P2,
            rs1: r(13),
            imm: -19,
        }));
    }
    for op in PredOp::ALL {
        insts.push(Inst::always(Op::PredSet {
            op,
            pd: Pred::P3,
            p1: PredSrc::plain(Pred::P4),
            p2: PredSrc::negated(Pred::P5),
        }));
    }
    // Every addressable area and size for loads and stores (Main is
    // reached only via the split access ops below).
    for area in [MemArea::Stack, MemArea::Static, MemArea::Data, MemArea::Spm] {
        for size in AccessSize::ALL {
            insts.push(Inst::always(Op::Load {
                area,
                size,
                rd: r(14),
                ra: r(15),
                offset: 3,
            }));
            insts.push(Inst::always(Op::Store {
                area,
                size,
                ra: r(16),
                offset: 2,
                rs: r(17),
            }));
        }
    }
    insts.push(Inst::always(Op::MainLoad {
        ra: r(18),
        offset: 21,
    }));
    insts.push(Inst::always(Op::MainWait { rd: r(19) }));
    insts.push(Inst::always(Op::MainStore {
        ra: r(20),
        offset: 22,
        rs: r(21),
    }));
    insts.push(Inst::always(Op::CallR { rs: r(22) }));
    insts.push(Inst::always(Op::Sres { words: 11 }));
    insts.push(Inst::always(Op::Sens { words: 12 }));
    insts.push(Inst::always(Op::Sfree { words: 13 }));
    for s in SpecialReg::ALL {
        insts.push(Inst::always(Op::Mts { sd: s, rs: r(23) }));
        insts.push(Inst::always(Op::Mfs { rd: r(24), ss: s }));
    }
    // A guarded instruction, to round-trip guard rendering too.
    insts.push(Inst::unless(
        Pred::P6,
        Op::AluI {
            op: AluOp::Add,
            rd: r(25),
            rs1: r(25),
            imm: 1,
        },
    ));
    insts.push(Inst::always(Op::Ret));
    insts.push(Inst::always(Op::Halt));
    insts
}

/// Strips the `NNNN: ` address prefix the disassembler puts on each line.
fn strip_address(line: &str) -> &str {
    line.split_once(": ")
        .expect("disassembly line has an address")
        .1
}

#[test]
fn straight_line_variants_cover_all_but_pc_relative_flow() {
    let variants: std::collections::HashSet<_> = straight_line_variants()
        .iter()
        .map(|i| std::mem::discriminant(&i.op))
        .collect();
    // Op currently has 25 variants; Br and Call are the two exercised by
    // the flow test instead.
    assert_eq!(
        variants.len(),
        23,
        "a new Op variant is missing from the round-trip test"
    );
}

#[test]
fn every_op_variant_disassembles_and_reassembles_identically() {
    let insts = straight_line_variants();
    let mut source = String::from("        .func main\n");
    let mut expected: Vec<u32> = Vec::new();
    for inst in &insts {
        source.push_str(&format!("        {inst}\n"));
        expected.extend(encode(&Bundle::single(*inst)));
    }
    // A paired bundle exercises the `{ a ; b }` rendering as well.
    let pair = Bundle::pair(
        Inst::always(Op::AluR {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
        }),
        Inst::always(Op::AluI {
            op: AluOp::Sub,
            rd: r(4),
            rs1: r(4),
            imm: 1,
        }),
    );
    source.push_str(&format!("        {pair}\n"));
    expected.extend(encode(&pair));

    let image = assemble(&source).unwrap_or_else(|e| panic!("rendered ops assemble: {e}"));
    assert_eq!(
        image.code(),
        &expected[..],
        "assembled words match direct encoding"
    );

    let text = disassemble(image.code()).expect("disassembles");
    let mut rebuilt = String::from("        .func main\n");
    for line in text.lines() {
        rebuilt.push_str(&format!("        {}\n", strip_address(line)));
    }
    let again =
        assemble(&rebuilt).unwrap_or_else(|e| panic!("disassembly reassembles: {e}\n{rebuilt}"));
    assert_eq!(
        again.code(),
        image.code(),
        "round trip must be bit-identical"
    );
}

#[test]
fn flow_offsets_rebase_and_round_trip() {
    let source = "        .func f0
        ret
        nop
        nop
        .func main
        .entry main
        li r1 = 0
        cmpieq p1 = r1, 0
        (p1) br fwd
        nop
        nop
        call f0
        nop
fwd:
        br back
        nop
back:
        halt
";
    let image = assemble(source).expect("assembles");
    let text = disassemble(image.code()).expect("disassembles");

    // Rebuild assemblable text: reinsert `.func` markers at function
    // starts and rebase relative `br`/`call` offsets to the absolute
    // word addresses the assembler expects.
    let mut rebuilt = String::new();
    for line in text.lines() {
        let (addr_text, inst_text) = line.split_once(": ").expect("addressed line");
        let addr = u32::from_str_radix(addr_text, 16).expect("hex address");
        for f in image.functions() {
            if f.start_word == addr {
                rebuilt.push_str(&format!("        .func {}\n", f.name));
            }
        }
        let mut tokens: Vec<String> = inst_text.split_whitespace().map(String::from).collect();
        for i in 0..tokens.len() {
            if (tokens[i] == "br" || tokens[i] == "call") && i + 1 < tokens.len() {
                if let Ok(offset) = tokens[i + 1].parse::<i64>() {
                    tokens[i + 1] = (addr as i64 + offset).to_string();
                }
            }
        }
        rebuilt.push_str(&format!("        {}\n", tokens.join(" ")));
    }
    rebuilt.push_str("        .entry main\n");

    let again = assemble(&rebuilt)
        .unwrap_or_else(|e| panic!("rebased disassembly reassembles: {e}\n{rebuilt}"));
    assert_eq!(
        again.code(),
        image.code(),
        "flow round trip must be bit-identical"
    );
    assert_eq!(again.entry_word(), image.entry_word());
}
