//! Object images: the linked output of the assembler.

use std::collections::HashMap;

use patmos_isa::{decode_all, Bundle, DecodeError};

/// A function in the image, as the method cache sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncInfo {
    /// The symbol name.
    pub name: String,
    /// Start address in words.
    pub start_word: u32,
    /// Size in words (what a method-cache fill transfers).
    pub size_words: u32,
}

/// A chunk of initialised data placed in main memory by the loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// The defining symbol.
    pub name: String,
    /// Byte address of the first byte.
    pub addr: u32,
    /// The bytes to place.
    pub bytes: Vec<u8>,
}

/// A loop-bound annotation for the WCET analysis, attached to the word
/// address of the loop header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBound {
    /// Word address of the annotated bundle (the loop header).
    pub addr: u32,
    /// Minimum iteration count.
    pub min: u32,
    /// Maximum iteration count (what the analysis uses).
    pub max: u32,
}

/// A function's source location, from a `.srcfunc` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFunc {
    /// The function name (matches a `.func` symbol).
    pub name: String,
    /// 1-based source line of the definition.
    pub line: u32,
}

/// A source loop's code region, from a `.srcloop` directive. The span
/// covers everything the compiler derived from the loop — unrolled
/// copies, a software-pipelined prologue/kernel/epilogue and its
/// list-scheduled fallback included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceLoop {
    /// 1-based source line of the loop statement.
    pub line: u32,
    /// First word of the region.
    pub start_word: u32,
    /// One past the last word of the region.
    pub end_word: u32,
}

impl SourceLoop {
    /// Whether the region contains the word address.
    pub fn contains(&self, word: u32) -> bool {
        word >= self.start_word && word < self.end_word
    }
}

/// A software-pipelined loop's structured shape record, from a
/// `.pipeloop` directive: which block guards the pipeline, where the
/// kernel and the short-trip fallback loop live, and the facts the
/// WCET analysis needs to charge the pipelined shape instead of the
/// fallback — the fallback runs at most `threshold` header executions
/// per entry (it is only entered when the guard fails), and it never
/// runs at all when `min_trips >= threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeLoop {
    /// Word address of the guard block (the original loop header).
    pub guard_word: u32,
    /// Word address of the kernel loop header.
    pub kernel_word: u32,
    /// Word address of the fallback loop header.
    pub fallback_word: u32,
    /// Kernel initiation interval in bundles.
    pub ii: u32,
    /// Pipeline stage count.
    pub stages: u32,
    /// Prologue bundle count.
    pub prologue: u32,
    /// Epilogue bundle count.
    pub epilogue: u32,
    /// The guard's trip-count threshold: the guard passes exactly when
    /// the loop runs at least this many iterations.
    pub threshold: u32,
    /// Provable lower bound on the trip count (0 when unknown).
    pub min_trips: u32,
}

/// The source-map side table: function definition lines and loop code
/// regions. Empty for images assembled from plain `.pasm` sources.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceInfo {
    /// Function definition lines.
    pub funcs: Vec<SourceFunc>,
    /// Loop regions, in program order.
    pub loops: Vec<SourceLoop>,
}

impl SourceInfo {
    /// Whether the image carries no source map at all.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty() && self.loops.is_empty()
    }

    /// The definition line of a function, if mapped.
    pub fn func_line(&self, name: &str) -> Option<u32> {
        self.funcs.iter().find(|f| f.name == name).map(|f| f.line)
    }

    /// The innermost (smallest) loop region containing the word address.
    pub fn innermost_loop_at(&self, word: u32) -> Option<&SourceLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(word))
            .min_by_key(|l| l.end_word - l.start_word)
    }
}

/// The assembled program: code, function table, data, symbols and
/// annotations.
#[derive(Debug, Clone, Default)]
pub struct ObjectImage {
    pub(crate) code: Vec<u32>,
    pub(crate) functions: Vec<FuncInfo>,
    pub(crate) data: Vec<DataSegment>,
    pub(crate) symbols: HashMap<String, u32>,
    pub(crate) loop_bounds: Vec<LoopBound>,
    pub(crate) pipe_loops: Vec<PipeLoop>,
    pub(crate) source: SourceInfo,
    pub(crate) entry_word: u32,
}

impl ObjectImage {
    /// Builds an image directly from raw code words and a function
    /// table — the entry point for binary loaders, and for tests that
    /// need images the assembler would never emit (e.g. corrupt words).
    pub fn from_raw(code: Vec<u32>, functions: Vec<FuncInfo>, entry_word: u32) -> ObjectImage {
        ObjectImage {
            code,
            functions,
            entry_word,
            ..ObjectImage::default()
        }
    }

    /// The encoded instruction words.
    pub fn code(&self) -> &[u32] {
        &self.code
    }

    /// The function table, sorted by start address.
    pub fn functions(&self) -> &[FuncInfo] {
        &self.functions
    }

    /// Initialised data segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// All symbols (labels: word addresses; data/equ: their values).
    pub fn symbols(&self) -> &HashMap<String, u32> {
        &self.symbols
    }

    /// Loop-bound annotations in program order.
    pub fn loop_bounds(&self) -> &[LoopBound] {
        &self.loop_bounds
    }

    /// Software-pipelined loop records in program order.
    pub fn pipe_loops(&self) -> &[PipeLoop] {
        &self.pipe_loops
    }

    /// The source-map side table (empty for plain assembly sources).
    pub fn source_info(&self) -> &SourceInfo {
        &self.source
    }

    /// Resolves a word address to `(function name, source line)` using
    /// the source map: the innermost loop's line if the address sits in
    /// a mapped loop region, else the containing function's definition
    /// line.
    pub fn source_at(&self, word_addr: u32) -> Option<(&str, u32)> {
        let func = self.function_at(word_addr)?;
        if let Some(l) = self.source.innermost_loop_at(word_addr) {
            return Some((func.name.as_str(), l.line));
        }
        let line = self.source.func_line(&func.name)?;
        Some((func.name.as_str(), line))
    }

    /// Word address of the entry function.
    pub fn entry_word(&self) -> u32 {
        self.entry_word
    }

    /// The function containing the word address, if any.
    pub fn function_at(&self, word_addr: u32) -> Option<&FuncInfo> {
        self.functions
            .iter()
            .find(|f| word_addr >= f.start_word && word_addr < f.start_word + f.size_words)
    }

    /// The function starting exactly at the word address (call targets).
    pub fn function_starting_at(&self, word_addr: u32) -> Option<&FuncInfo> {
        self.functions.iter().find(|f| f.start_word == word_addr)
    }

    /// Looks up a symbol's value.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Decodes the whole image back into addressed bundles.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DecodeError`]; an image produced by
    /// [`crate::assemble`] always decodes.
    pub fn decode(&self) -> Result<Vec<(u32, Bundle)>, DecodeError> {
        decode_all(&self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_with_functions() -> ObjectImage {
        ObjectImage {
            code: vec![0; 10],
            functions: vec![
                FuncInfo {
                    name: "a".into(),
                    start_word: 0,
                    size_words: 4,
                },
                FuncInfo {
                    name: "b".into(),
                    start_word: 4,
                    size_words: 6,
                },
            ],
            ..ObjectImage::default()
        }
    }

    #[test]
    fn function_lookup() {
        let img = image_with_functions();
        assert_eq!(img.function_at(0).map(|f| f.name.as_str()), Some("a"));
        assert_eq!(img.function_at(3).map(|f| f.name.as_str()), Some("a"));
        assert_eq!(img.function_at(4).map(|f| f.name.as_str()), Some("b"));
        assert_eq!(img.function_at(9).map(|f| f.name.as_str()), Some("b"));
        assert_eq!(img.function_at(10), None);
        assert_eq!(
            img.function_starting_at(4).map(|f| f.name.as_str()),
            Some("b")
        );
        assert_eq!(img.function_starting_at(5), None);
    }
}
