//! Disassembler: decoded bundles rendered back as assembly text.

use patmos_isa::{decode, DecodeError};

/// Disassembles an image of instruction words into addressed assembly
/// lines (`word-address: bundle`).
///
/// # Errors
///
/// Returns the first [`DecodeError`] with the word address where it
/// occurred embedded in the message string of the `Err` variant's source.
///
/// # Example
///
/// ```
/// use patmos_isa::{encode, Bundle, Inst, Op};
///
/// # fn main() -> Result<(), patmos_isa::DecodeError> {
/// let words = encode(&Bundle::single(Inst::always(Op::Halt)));
/// let text = patmos_asm::disassemble(&words)?;
/// assert_eq!(text.trim(), "0000: halt");
/// # Ok(())
/// # }
/// ```
pub fn disassemble(words: &[u32]) -> Result<String, DecodeError> {
    let mut out = String::new();
    let mut addr = 0usize;
    while addr < words.len() {
        let (bundle, used) = decode(&words[addr..])?;
        out.push_str(&format!("{addr:04x}: {bundle}\n"));
        addr += used;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn assemble_disassemble_round_trip_is_stable() {
        let src = "        .func main\n        li r1 = 3\n        { add r2 = r1, r1 ; subi r3 = r1, 1 }\n        halt\n";
        let img = assemble(src).expect("assembles");
        let text = disassemble(img.code()).expect("disassembles");
        assert!(text.contains("li r1 = 3"));
        assert!(text.contains("{ add r2 = r1, r1 ; subi r3 = r1, 1 }"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn addresses_account_for_bundle_width() {
        let src = "        .func main\n        lil r1 = 70000\n        halt\n";
        let img = assemble(src).expect("assembles");
        let text = disassemble(img.code()).expect("disassembles");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("0000:"));
        assert!(lines[1].starts_with("0002:"), "lil is two words: {text}");
    }
}
