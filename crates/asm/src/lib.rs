//! Assembler, disassembler and object images for the Patmos ISA.
//!
//! The paper's toolchain plan (Section 5) includes a port of the GNU
//! Binutils; this crate plays that role. It provides:
//!
//! * [`assemble`] — a two-pass assembler from textual Patmos assembly to
//!   an [`ObjectImage`];
//! * [`disassemble`] — the inverse, for debugging and for the WCET
//!   analysis' CFG reconstruction;
//! * [`ObjectImage`] — code, the function table the method cache needs,
//!   data segments, symbols, and loop-bound annotations for the WCET
//!   analysis.
//!
//! # Assembly syntax
//!
//! One instruction per line, or a dual-issue bundle in braces:
//!
//! ```text
//! # comments run to end of line
//!         .func   main          # begin function `main`
//!         .entry  main
//!         li      r1 = 0
//!         li      r2 = 10
//! loop:                          # labels end with `:`
//!         .loopbound 10 10       # annotation for the WCET analysis
//!         { add r1 = r1, r2 ; subi r2 = r2, 1 }
//!         cmpineq p1 = r2, 0
//!         (p1) br loop           # guarded branch, 2 delay slots
//!         nop
//!         nop
//!         halt
//! ```
//!
//! Directives: `.func name`, `.entry name`, `.data name addr`, `.word v,
//! ...`, `.space bytes`, `.equ name value`, `.loopbound min max`, plus
//! the source-map side table the compiler emits for the profiler:
//! `.srcfunc name line` (definition line of a function) and `.srcloop
//! line start end` (a source loop's code region between two labels).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), patmos_asm::AsmError> {
//! let image = patmos_asm::assemble(
//!     "        .func start\n        .entry start\n        li r1 = 7\n        halt\n",
//! )?;
//! assert_eq!(image.functions().len(), 1);
//! # Ok(())
//! # }
//! ```

mod assembler;
mod disasm;
mod lexer;
mod object;

pub use assembler::{assemble, AsmError};
pub use disasm::disassemble;
pub use object::{
    DataSegment, FuncInfo, LoopBound, ObjectImage, PipeLoop, SourceFunc, SourceInfo, SourceLoop,
};
