//! Line-oriented tokenizer for Patmos assembly.

use std::fmt;

/// A token of the assembly language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier, mnemonic, register name, or directive (with dot).
    Ident(String),
    /// An integer literal (decimal or `0x` hex; sign handled by parser).
    Int(i64),
    /// Punctuation characters that carry structure.
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Semi,
    Comma,
    Equals,
    Plus,
    Minus,
    Bang,
    Colon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Semi => f.write_str(";"),
            Token::Comma => f.write_str(","),
            Token::Equals => f.write_str("="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Bang => f.write_str("!"),
            Token::Colon => f.write_str(":"),
        }
    }
}

/// Tokenizes one source line. Comments (`#` or `//`) run to end of line.
///
/// Returns `Err(column)` on an unexpected character.
pub fn tokenize_line(line: &str) -> Result<Vec<Token>, usize> {
    let mut tokens = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '#' => break,
            '/' if bytes.get(i + 1) == Some(&b'/') => break,
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '!' => {
                tokens.push(Token::Bang);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                let mut value: i64;
                if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    let hex_start = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hex_start {
                        return Err(start);
                    }
                    value = i64::from_str_radix(&line[hex_start..i], 16).map_err(|_| start)?;
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    value = line[start..i].parse().map_err(|_| start)?;
                }
                // Clamp silently-impossible magnitudes to the parser.
                if value > u32::MAX as i64 {
                    value = u32::MAX as i64;
                }
                tokens.push(Token::Int(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(line[start..i].to_string()));
            }
            _ => return Err(i),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_instruction_line() {
        let toks = tokenize_line("(p1) add r1 = r2, r3 # comment").expect("lexes");
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Ident("p1".into()),
                Token::RParen,
                Token::Ident("add".into()),
                Token::Ident("r1".into()),
                Token::Equals,
                Token::Ident("r2".into()),
                Token::Comma,
                Token::Ident("r3".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_numbers() {
        let toks = tokenize_line("li r1 = -42").expect("lexes");
        assert!(toks.contains(&Token::Minus));
        assert!(toks.contains(&Token::Int(42)));
        let toks = tokenize_line(".word 0xFF").expect("lexes");
        assert!(toks.contains(&Token::Int(255)));
    }

    #[test]
    fn tokenizes_bundle_and_memory() {
        let toks = tokenize_line("{ lws r1 = [r2 + 1] ; nop }").expect("lexes");
        assert_eq!(toks.first(), Some(&Token::LBrace));
        assert_eq!(toks.last(), Some(&Token::RBrace));
        assert!(toks.contains(&Token::Semi));
        assert!(toks.contains(&Token::LBracket));
    }

    #[test]
    fn double_slash_comment() {
        let toks = tokenize_line("nop // trailing").expect("lexes");
        assert_eq!(toks, vec![Token::Ident("nop".into())]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize_line("nop @").is_err());
    }

    #[test]
    fn directive_keeps_dot() {
        let toks = tokenize_line(".func main").expect("lexes");
        assert_eq!(toks[0], Token::Ident(".func".into()));
    }
}
