//! The two-pass assembler.

use std::collections::HashMap;
use std::fmt;

use patmos_isa::{
    encode, encoding::validate_op, AccessSize, AluOp, Bundle, CmpOp, Guard, Inst, MemArea, Op,
    Pred, PredOp, PredSrc, Reg, SpecialReg,
};

use crate::lexer::{tokenize_line, Token};
use crate::object::{
    DataSegment, FuncInfo, LoopBound, ObjectImage, PipeLoop, SourceFunc, SourceInfo, SourceLoop,
};

/// An assembly error with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// An operand that may still be a symbol.
#[derive(Debug, Clone)]
enum SymOrVal {
    Sym(String),
    Val(i64),
}

/// A parsed instruction, possibly awaiting symbol resolution.
#[derive(Debug, Clone)]
enum PInst {
    Ready(Inst),
    /// `br`/`call` with a label target.
    Flow {
        guard: Guard,
        call: bool,
        target: SymOrVal,
    },
    /// `lil rd = symbol`.
    LongImm {
        guard: Guard,
        rd: Reg,
        value: SymOrVal,
    },
}

impl PInst {
    /// Words this instruction contributes when it is the only slot.
    fn is_long(&self) -> bool {
        matches!(self, PInst::LongImm { .. })
            || matches!(self, PInst::Ready(i) if matches!(i.op, Op::LoadImm32 { .. }))
    }
}

#[derive(Debug, Clone)]
enum Stmt {
    Label(String),
    Func(String),
    Entry(String),
    DataStart {
        name: String,
        addr: u32,
    },
    Words(Vec<SymOrVal>),
    Bytes(Vec<i64>),
    Space(u32),
    Equ {
        name: String,
        value: i64,
    },
    LoopBound {
        min: u32,
        max: u32,
    },
    SrcFunc {
        name: String,
        line: u32,
    },
    SrcLoop {
        line: u32,
        start: String,
        end: String,
    },
    PipeLoop {
        guard: String,
        kernel: String,
        fallback: String,
        ii: u32,
        stages: u32,
        prologue: u32,
        epilogue: u32,
        threshold: u32,
        min_trips: u32,
    },
    Bundle(Vec<PInst>),
}

struct Line {
    number: usize,
    stmt: Stmt,
}

/// Assembles a complete program into an [`ObjectImage`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for lexical errors,
/// unknown mnemonics, malformed operands, out-of-range immediates,
/// undefined or duplicate symbols, calls to non-function labels, and
/// branches that leave their function.
pub fn assemble(source: &str) -> Result<ObjectImage, AsmError> {
    let mut lines = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let tokens = tokenize_line(raw).map_err(|col| AsmError {
            line: number,
            message: format!("unexpected character at column {}", col + 1),
        })?;
        if tokens.is_empty() {
            continue;
        }
        for stmt in parse_statements(&tokens).map_err(|message| AsmError {
            line: number,
            message,
        })? {
            lines.push(Line { number, stmt });
        }
    }

    // Pass 1: addresses, symbols, functions, annotations.
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut functions: Vec<FuncInfo> = Vec::new();
    let mut loop_bounds: Vec<LoopBound> = Vec::new();
    let mut src_funcs: Vec<(String, u32, usize)> = Vec::new();
    let mut src_loops: Vec<(u32, String, String, usize)> = Vec::new();
    let mut raw_pipe_loops: Vec<(Stmt, usize)> = Vec::new();
    let mut entry_name: Option<(String, usize)> = None;
    let mut addr: u32 = 0;
    let mut data_addr: u32 = 0;
    let mut in_data = false;

    let define = |symbols: &mut HashMap<String, u32>, name: &str, value: u32, line: usize| {
        if symbols.insert(name.to_string(), value).is_some() {
            return Err(AsmError {
                line,
                message: format!("duplicate symbol `{name}`"),
            });
        }
        Ok(())
    };

    for line in &lines {
        match &line.stmt {
            Stmt::Label(name) => {
                let value = if in_data { data_addr } else { addr };
                define(&mut symbols, name, value, line.number)?;
            }
            Stmt::Func(name) => {
                in_data = false;
                if let Some(prev) = functions.last_mut() {
                    prev.size_words = addr - prev.start_word;
                }
                define(&mut symbols, name, addr, line.number)?;
                functions.push(FuncInfo {
                    name: name.clone(),
                    start_word: addr,
                    size_words: 0,
                });
            }
            Stmt::Entry(name) => entry_name = Some((name.clone(), line.number)),
            Stmt::DataStart { name, addr: a } => {
                in_data = true;
                data_addr = *a;
                define(&mut symbols, name, *a, line.number)?;
            }
            Stmt::Words(ws) => {
                if !in_data {
                    return Err(AsmError {
                        line: line.number,
                        message: ".word outside a .data segment".into(),
                    });
                }
                data_addr += 4 * ws.len() as u32;
            }
            Stmt::Bytes(bs) => {
                if !in_data {
                    return Err(AsmError {
                        line: line.number,
                        message: ".byte outside a .data segment".into(),
                    });
                }
                data_addr += bs.len() as u32;
            }
            Stmt::Space(n) => {
                if !in_data {
                    return Err(AsmError {
                        line: line.number,
                        message: ".space outside a .data segment".into(),
                    });
                }
                data_addr += n;
            }
            Stmt::Equ { name, value } => {
                define(&mut symbols, name, *value as u32, line.number)?;
            }
            Stmt::LoopBound { min, max } => {
                loop_bounds.push(LoopBound {
                    addr,
                    min: *min,
                    max: *max,
                });
            }
            Stmt::SrcFunc { name, line: l } => {
                src_funcs.push((name.clone(), *l, line.number));
            }
            Stmt::SrcLoop {
                line: l,
                start,
                end,
            } => {
                src_loops.push((*l, start.clone(), end.clone(), line.number));
            }
            Stmt::PipeLoop { .. } => {
                raw_pipe_loops.push((line.stmt.clone(), line.number));
            }
            Stmt::Bundle(insts) => {
                if in_data {
                    return Err(AsmError {
                        line: line.number,
                        message: "instruction inside a .data segment".into(),
                    });
                }
                if functions.is_empty() {
                    return Err(AsmError {
                        line: line.number,
                        message: "instruction before the first .func".into(),
                    });
                }
                let width = if insts.len() == 2 || insts[0].is_long() {
                    2
                } else {
                    1
                };
                addr += width;
            }
        }
    }
    if let Some(prev) = functions.last_mut() {
        prev.size_words = addr - prev.start_word;
    }

    // Source map: resolvable only now that every label has an address.
    let mut source = SourceInfo::default();
    for (name, src_line, line) in src_funcs {
        if !functions.iter().any(|f| f.name == name) {
            return Err(AsmError {
                line,
                message: format!(".srcfunc names unknown function `{name}`"),
            });
        }
        source.funcs.push(SourceFunc {
            name,
            line: src_line,
        });
    }
    for (src_line, start, end, line) in src_loops {
        let lookup = |name: &str| {
            symbols.get(name).copied().ok_or_else(|| AsmError {
                line,
                message: format!(".srcloop references undefined label `{name}`"),
            })
        };
        let start_word = lookup(&start)?;
        let end_word = lookup(&end)?;
        if end_word < start_word {
            return Err(AsmError {
                line,
                message: format!(".srcloop region `{start}`..`{end}` is reversed"),
            });
        }
        source.loops.push(SourceLoop {
            line: src_line,
            start_word,
            end_word,
        });
    }
    let mut pipe_loops: Vec<PipeLoop> = Vec::new();
    for (stmt, line) in raw_pipe_loops {
        let Stmt::PipeLoop {
            guard,
            kernel,
            fallback,
            ii,
            stages,
            prologue,
            epilogue,
            threshold,
            min_trips,
        } = stmt
        else {
            unreachable!("only PipeLoop statements are collected");
        };
        let lookup = |name: &str| {
            symbols.get(name).copied().ok_or_else(|| AsmError {
                line,
                message: format!(".pipeloop references undefined label `{name}`"),
            })
        };
        pipe_loops.push(PipeLoop {
            guard_word: lookup(&guard)?,
            kernel_word: lookup(&kernel)?,
            fallback_word: lookup(&fallback)?,
            ii,
            stages,
            prologue,
            epilogue,
            threshold,
            min_trips,
        });
    }

    // Pass 2: encode.
    let resolve = |sv: &SymOrVal, line: usize| -> Result<i64, AsmError> {
        match sv {
            SymOrVal::Val(v) => Ok(*v),
            SymOrVal::Sym(name) => symbols
                .get(name)
                .map(|&v| v as i64)
                .ok_or_else(|| AsmError {
                    line,
                    message: format!("undefined symbol `{name}`"),
                }),
        }
    };

    let mut code: Vec<u32> = Vec::new();
    let mut data: Vec<DataSegment> = Vec::new();
    let mut addr: u32 = 0;
    // Pass 1 rejected data directives outside a segment; re-check here
    // rather than coupling this pass to that invariant with a panic.
    let open_segment = |data: &mut Vec<DataSegment>, number: usize| -> Result<usize, AsmError> {
        match data.len().checked_sub(1) {
            Some(i) => Ok(i),
            None => Err(AsmError {
                line: number,
                message: "data directive outside a .data segment".into(),
            }),
        }
    };
    for line in &lines {
        match &line.stmt {
            Stmt::DataStart { name, addr: a } => {
                data.push(DataSegment {
                    name: name.clone(),
                    addr: *a,
                    bytes: Vec::new(),
                });
            }
            Stmt::Words(ws) => {
                let seg = open_segment(&mut data, line.number)?;
                for w in ws {
                    let v = resolve(w, line.number)? as u32;
                    data[seg].bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            Stmt::Bytes(bs) => {
                let seg = open_segment(&mut data, line.number)?;
                for b in bs {
                    data[seg].bytes.push(*b as u8);
                }
            }
            Stmt::Space(n) => {
                let seg = open_segment(&mut data, line.number)?;
                data[seg]
                    .bytes
                    .extend(std::iter::repeat_n(0u8, *n as usize));
            }
            Stmt::Bundle(insts) => {
                let mut resolved = Vec::with_capacity(insts.len());
                for p in insts {
                    let inst = match p {
                        PInst::Ready(i) => *i,
                        PInst::Flow {
                            guard,
                            call,
                            target,
                        } => {
                            let target_word = resolve(target, line.number)? as u32;
                            let offset = target_word as i64 - addr as i64;
                            if *call {
                                if !functions.iter().any(|f| f.start_word == target_word) {
                                    return Err(AsmError {
                                        line: line.number,
                                        message: "call target is not a function entry".into(),
                                    });
                                }
                                Inst::new(
                                    *guard,
                                    Op::Call {
                                        offset: offset as i32,
                                    },
                                )
                            } else {
                                // Branches must stay inside their function
                                // (method-cache contract).
                                let here = functions.iter().find(|f| {
                                    addr >= f.start_word && addr < f.start_word + f.size_words
                                });
                                if let Some(func) = here {
                                    if target_word < func.start_word
                                        || target_word >= func.start_word + func.size_words
                                    {
                                        return Err(AsmError {
                                            line: line.number,
                                            message: format!(
                                                "branch leaves function `{}`; use call",
                                                func.name
                                            ),
                                        });
                                    }
                                }
                                Inst::new(
                                    *guard,
                                    Op::Br {
                                        offset: offset as i32,
                                    },
                                )
                            }
                        }
                        PInst::LongImm { guard, rd, value } => {
                            let v = resolve(value, line.number)? as u32;
                            Inst::new(*guard, Op::LoadImm32 { rd: *rd, imm: v })
                        }
                    };
                    validate_op(&inst.op).map_err(|e| AsmError {
                        line: line.number,
                        message: e.to_string(),
                    })?;
                    resolved.push(inst);
                }
                let bundle = match resolved.len() {
                    1 => Bundle::single(resolved[0]),
                    2 => Bundle::try_pair(resolved[0], resolved[1]).map_err(|e| AsmError {
                        line: line.number,
                        message: e.to_string(),
                    })?,
                    n => {
                        return Err(AsmError {
                            line: line.number,
                            message: format!("a bundle holds 1 or 2 instructions, not {n}"),
                        })
                    }
                };
                let words = encode(&bundle);
                addr += words.len() as u32;
                code.extend(words);
            }
            _ => {}
        }
    }

    let entry_word = match entry_name {
        Some((name, line)) => *symbols.get(&name).ok_or_else(|| AsmError {
            line,
            message: format!("undefined entry `{name}`"),
        })?,
        None => functions.first().map(|f| f.start_word).unwrap_or(0),
    };

    Ok(ObjectImage {
        code,
        functions,
        data,
        symbols,
        loop_bounds,
        pipe_loops,
        source,
        entry_word,
    })
}

// ---------------------------------------------------------------------
// Statement and instruction parsing
// ---------------------------------------------------------------------

/// A cursor over one line's tokens.
struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(tokens: &'a [Token]) -> Cursor<'a> {
        Cursor { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), String> {
        match self.next() {
            Some(t) if *t == tok => Ok(()),
            Some(t) => Err(format!("expected `{tok}`, found `{t}`")),
            None => Err(format!("expected `{tok}` at end of line")),
        }
    }

    fn ident(&mut self) -> Result<&'a str, String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(format!("expected identifier, found `{t}`")),
            None => Err("expected identifier at end of line".into()),
        }
    }

    fn int(&mut self) -> Result<i64, String> {
        let neg = self.eat(&Token::Minus);
        match self.next() {
            Some(Token::Int(v)) => Ok(if neg { -v } else { *v }),
            Some(t) => Err(format!("expected integer, found `{t}`")),
            None => Err("expected integer at end of line".into()),
        }
    }

    fn sym_or_int(&mut self) -> Result<SymOrVal, String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(SymOrVal::Sym(s))
            }
            _ => Ok(SymOrVal::Val(self.int()?)),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.tokens.len()
    }
}

fn parse_reg(name: &str) -> Option<Reg> {
    let rest = name.strip_prefix('r')?;
    let idx: u8 = rest.parse().ok()?;
    Reg::new(idx)
}

fn parse_pred(name: &str) -> Option<Pred> {
    let rest = name.strip_prefix('p')?;
    let idx: u8 = rest.parse().ok()?;
    Pred::new(idx)
}

fn parse_special(name: &str) -> Option<SpecialReg> {
    match name {
        "sl" => Some(SpecialReg::Sl),
        "sh" => Some(SpecialReg::Sh),
        "sm" => Some(SpecialReg::Sm),
        "st" => Some(SpecialReg::St),
        "ss" => Some(SpecialReg::Ss),
        _ => None,
    }
}

fn reg_operand(cur: &mut Cursor) -> Result<Reg, String> {
    let name = cur.ident()?;
    parse_reg(name).ok_or_else(|| format!("expected register, found `{name}`"))
}

fn pred_operand(cur: &mut Cursor) -> Result<Pred, String> {
    let name = cur.ident()?;
    parse_pred(name).ok_or_else(|| format!("expected predicate, found `{name}`"))
}

fn pred_src(cur: &mut Cursor) -> Result<PredSrc, String> {
    let negate = cur.eat(&Token::Bang);
    Ok(PredSrc {
        pred: pred_operand(cur)?,
        negate,
    })
}

/// Parses `[ra]`, `[ra + off]` or `[ra - off]`.
fn mem_operand(cur: &mut Cursor) -> Result<(Reg, i64), String> {
    cur.expect(Token::LBracket)?;
    let ra = reg_operand(cur)?;
    let offset = if cur.eat(&Token::Plus) {
        cur.int()?
    } else if cur.eat(&Token::Minus) {
        -cur.int()?
    } else {
        0
    };
    cur.expect(Token::RBracket)?;
    Ok((ra, offset))
}

fn parse_statements(tokens: &[Token]) -> Result<Vec<Stmt>, String> {
    let mut cur = Cursor::new(tokens);
    let mut stmts = Vec::new();

    // Leading labels: `name:`.
    while let (Some(Token::Ident(name)), Some(Token::Colon)) =
        (cur.tokens.get(cur.pos), cur.tokens.get(cur.pos + 1))
    {
        if name.starts_with('.') {
            break;
        }
        stmts.push(Stmt::Label(name.clone()));
        cur.pos += 2;
    }
    if cur.done() {
        return Ok(stmts);
    }

    if let Some(Token::Ident(word)) = cur.peek() {
        if word.starts_with('.') {
            let directive = word.clone();
            cur.pos += 1;
            let stmt = match directive.as_str() {
                ".func" => Stmt::Func(cur.ident()?.to_string()),
                ".entry" => Stmt::Entry(cur.ident()?.to_string()),
                ".data" => {
                    let name = cur.ident()?.to_string();
                    let addr = cur.int()? as u32;
                    Stmt::DataStart { name, addr }
                }
                ".word" => {
                    let mut ws = vec![cur.sym_or_int()?];
                    while cur.eat(&Token::Comma) {
                        ws.push(cur.sym_or_int()?);
                    }
                    Stmt::Words(ws)
                }
                ".byte" => {
                    let mut bs = vec![cur.int()?];
                    while cur.eat(&Token::Comma) {
                        bs.push(cur.int()?);
                    }
                    Stmt::Bytes(bs)
                }
                ".space" => Stmt::Space(cur.int()? as u32),
                ".equ" => {
                    let name = cur.ident()?.to_string();
                    let value = cur.int()?;
                    Stmt::Equ { name, value }
                }
                ".loopbound" => {
                    let min = cur.int()? as u32;
                    let max = cur.int()? as u32;
                    if min > max {
                        return Err("loop bound min exceeds max".into());
                    }
                    Stmt::LoopBound { min, max }
                }
                ".srcfunc" => {
                    let name = cur.ident()?.to_string();
                    let line = cur.int()? as u32;
                    Stmt::SrcFunc { name, line }
                }
                ".srcloop" => {
                    let line = cur.int()? as u32;
                    let start = cur.ident()?.to_string();
                    let end = cur.ident()?.to_string();
                    Stmt::SrcLoop { line, start, end }
                }
                ".pipeloop" => {
                    let guard = cur.ident()?.to_string();
                    let kernel = cur.ident()?.to_string();
                    let fallback = cur.ident()?.to_string();
                    let ii = cur.int()? as u32;
                    let stages = cur.int()? as u32;
                    let prologue = cur.int()? as u32;
                    let epilogue = cur.int()? as u32;
                    let threshold = cur.int()? as u32;
                    let min_trips = cur.int()? as u32;
                    if ii == 0 || stages == 0 {
                        return Err("pipeloop II and stage count must be positive".into());
                    }
                    Stmt::PipeLoop {
                        guard,
                        kernel,
                        fallback,
                        ii,
                        stages,
                        prologue,
                        epilogue,
                        threshold,
                        min_trips,
                    }
                }
                other => return Err(format!("unknown directive `{other}`")),
            };
            if !cur.done() {
                return Err(format!("trailing tokens after `{directive}`"));
            }
            stmts.push(stmt);
            return Ok(stmts);
        }
    }

    // An instruction line: `{ i ; i }` or a single instruction.
    let insts = if cur.eat(&Token::LBrace) {
        let first = parse_inst(&mut cur)?;
        cur.expect(Token::Semi)?;
        let second = parse_inst(&mut cur)?;
        cur.expect(Token::RBrace)?;
        vec![first, second]
    } else {
        vec![parse_inst(&mut cur)?]
    };
    if !cur.done() {
        return Err(format!(
            "trailing tokens after instruction: `{}`",
            cur.peek().expect("non-empty")
        ));
    }
    stmts.push(Stmt::Bundle(insts));
    Ok(stmts)
}

fn parse_inst(cur: &mut Cursor) -> Result<PInst, String> {
    // Optional guard `(pN)` / `(!pN)`.
    let guard = if cur.eat(&Token::LParen) {
        let negate = cur.eat(&Token::Bang);
        let pred = pred_operand(cur)?;
        cur.expect(Token::RParen)?;
        Guard { pred, negate }
    } else {
        Guard::ALWAYS
    };

    let mnemonic = cur.ident()?.to_string();
    let op = parse_op(&mnemonic, cur)?;
    match op {
        ParsedOp::Op(op) => Ok(PInst::Ready(Inst::new(guard, op))),
        ParsedOp::Flow { call, target } => Ok(PInst::Flow {
            guard,
            call,
            target,
        }),
        ParsedOp::LongImm { rd, value } => Ok(PInst::LongImm { guard, rd, value }),
    }
}

enum ParsedOp {
    Op(Op),
    Flow { call: bool, target: SymOrVal },
    LongImm { rd: Reg, value: SymOrVal },
}

fn alu_from_mnemonic(m: &str) -> Option<(AluOp, bool)> {
    let table: [(&str, AluOp); 9] = [
        ("add", AluOp::Add),
        ("sub", AluOp::Sub),
        ("xor", AluOp::Xor),
        ("or", AluOp::Or),
        ("and", AluOp::And),
        ("nor", AluOp::Nor),
        ("sl", AluOp::Shl),
        ("sr", AluOp::Shr),
        ("sra", AluOp::Sra),
    ];
    for (name, op) in table {
        if m == name {
            return Some((op, false));
        }
        if let Some(stripped) = m.strip_suffix('i') {
            if stripped == name {
                return Some((op, true));
            }
        }
    }
    None
}

fn cmp_from_mnemonic(m: &str) -> Option<(CmpOp, bool)> {
    let (body, imm) = if let Some(rest) = m.strip_prefix("cmpi") {
        (rest, true)
    } else if let Some(rest) = m.strip_prefix("cmp") {
        (rest, false)
    } else {
        return None;
    };
    let op = match body {
        "eq" => CmpOp::Eq,
        "neq" => CmpOp::Neq,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "ult" => CmpOp::Ult,
        "ule" => CmpOp::Ule,
        _ => return None,
    };
    Some((op, imm))
}

/// Decodes `l`/`s` + size letter + area suffix (e.g. `lws`, `sbc`).
fn mem_mnemonic(m: &str) -> Option<(bool, AccessSize, MemArea)> {
    let mut chars = m.chars();
    let load = match chars.next()? {
        'l' => true,
        's' => false,
        _ => return None,
    };
    let size = match chars.next()? {
        'w' => AccessSize::Word,
        'h' => AccessSize::Half,
        'b' => AccessSize::Byte,
        _ => return None,
    };
    let area = match chars.next()? {
        's' => MemArea::Stack,
        'c' => MemArea::Static,
        'd' => MemArea::Data,
        'l' => MemArea::Spm,
        _ => return None,
    };
    if chars.next().is_some() {
        return None;
    }
    Some((load, size, area))
}

fn parse_op(mnemonic: &str, cur: &mut Cursor) -> Result<ParsedOp, String> {
    // Fixed-form mnemonics first.
    match mnemonic {
        "nop" => return Ok(ParsedOp::Op(Op::Nop)),
        "halt" => return Ok(ParsedOp::Op(Op::Halt)),
        "ret" => return Ok(ParsedOp::Op(Op::Ret)),
        "mul" => {
            let rs1 = reg_operand(cur)?;
            cur.expect(Token::Comma)?;
            let rs2 = reg_operand(cur)?;
            return Ok(ParsedOp::Op(Op::Mul { rs1, rs2 }));
        }
        "mov" => {
            let rd = reg_operand(cur)?;
            cur.expect(Token::Equals)?;
            let rs = reg_operand(cur)?;
            return Ok(ParsedOp::Op(Op::AluR {
                op: AluOp::Add,
                rd,
                rs1: rs,
                rs2: Reg::R0,
            }));
        }
        "li" => {
            let rd = reg_operand(cur)?;
            cur.expect(Token::Equals)?;
            let v = cur.int()?;
            if !(-32768..=32767).contains(&v) {
                return Err(format!("`li` immediate {v} out of 16-bit range; use `lil`"));
            }
            return Ok(ParsedOp::Op(Op::LoadImmLow {
                rd,
                imm: v as i16 as u16,
            }));
        }
        "liu" => {
            let rd = reg_operand(cur)?;
            cur.expect(Token::Equals)?;
            let v = cur.int()?;
            if !(0..=0xffff).contains(&v) {
                return Err(format!("`liu` immediate {v} out of range"));
            }
            return Ok(ParsedOp::Op(Op::LoadImmHigh { rd, imm: v as u16 }));
        }
        "lil" => {
            let rd = reg_operand(cur)?;
            cur.expect(Token::Equals)?;
            let value = cur.sym_or_int()?;
            return Ok(ParsedOp::LongImm { rd, value });
        }
        "por" | "pand" | "pxor" => {
            let op = match mnemonic {
                "por" => PredOp::Or,
                "pand" => PredOp::And,
                _ => PredOp::Xor,
            };
            let pd = pred_operand(cur)?;
            cur.expect(Token::Equals)?;
            let p1 = pred_src(cur)?;
            cur.expect(Token::Comma)?;
            let p2 = pred_src(cur)?;
            return Ok(ParsedOp::Op(Op::PredSet { op, pd, p1, p2 }));
        }
        "pmov" => {
            let pd = pred_operand(cur)?;
            cur.expect(Token::Equals)?;
            let p1 = pred_src(cur)?;
            return Ok(ParsedOp::Op(Op::PredSet {
                op: PredOp::Or,
                pd,
                p1,
                p2: p1,
            }));
        }
        "pnot" => {
            let pd = pred_operand(cur)?;
            cur.expect(Token::Equals)?;
            let mut p1 = pred_src(cur)?;
            p1.negate = !p1.negate;
            return Ok(ParsedOp::Op(Op::PredSet {
                op: PredOp::Or,
                pd,
                p1,
                p2: p1,
            }));
        }
        "ldm" => {
            let (ra, offset) = mem_operand(cur)?;
            return Ok(ParsedOp::Op(Op::MainLoad {
                ra,
                offset: offset as i16,
            }));
        }
        "wres" => {
            let rd = reg_operand(cur)?;
            return Ok(ParsedOp::Op(Op::MainWait { rd }));
        }
        "stm" => {
            let (ra, offset) = mem_operand(cur)?;
            cur.expect(Token::Equals)?;
            let rs = reg_operand(cur)?;
            return Ok(ParsedOp::Op(Op::MainStore {
                ra,
                offset: offset as i16,
                rs,
            }));
        }
        "br" | "call" => {
            let target = cur.sym_or_int()?;
            return Ok(ParsedOp::Flow {
                call: mnemonic == "call",
                target,
            });
        }
        "callr" => {
            let rs = reg_operand(cur)?;
            return Ok(ParsedOp::Op(Op::CallR { rs }));
        }
        "sres" | "sens" | "sfree" => {
            let words = cur.int()? as u32;
            let op = match mnemonic {
                "sres" => Op::Sres { words },
                "sens" => Op::Sens { words },
                _ => Op::Sfree { words },
            };
            return Ok(ParsedOp::Op(op));
        }
        "mts" => {
            let name = cur.ident()?;
            let sd =
                parse_special(name).ok_or_else(|| format!("unknown special register `{name}`"))?;
            cur.expect(Token::Equals)?;
            let rs = reg_operand(cur)?;
            return Ok(ParsedOp::Op(Op::Mts { sd, rs }));
        }
        "mfs" => {
            let rd = reg_operand(cur)?;
            cur.expect(Token::Equals)?;
            let name = cur.ident()?;
            let ss =
                parse_special(name).ok_or_else(|| format!("unknown special register `{name}`"))?;
            return Ok(ParsedOp::Op(Op::Mfs { rd, ss }));
        }
        _ => {}
    }

    if let Some((op, _, _)) = mem_mnemonic(mnemonic).map(|t| (t, 0, 0)) {
        let (load, size, area) = op;
        if load {
            let rd = reg_operand(cur)?;
            cur.expect(Token::Equals)?;
            let (ra, offset) = mem_operand(cur)?;
            return Ok(ParsedOp::Op(Op::Load {
                area,
                size,
                rd,
                ra,
                offset: offset as i16,
            }));
        } else {
            let (ra, offset) = mem_operand(cur)?;
            cur.expect(Token::Equals)?;
            let rs = reg_operand(cur)?;
            return Ok(ParsedOp::Op(Op::Store {
                area,
                size,
                ra,
                offset: offset as i16,
                rs,
            }));
        }
    }

    if let Some((op, is_cmp_imm)) = cmp_from_mnemonic(mnemonic) {
        let pd = pred_operand(cur)?;
        cur.expect(Token::Equals)?;
        let rs1 = reg_operand(cur)?;
        cur.expect(Token::Comma)?;
        if is_cmp_imm {
            let imm = cur.int()?;
            return Ok(ParsedOp::Op(Op::CmpI {
                op,
                pd,
                rs1,
                imm: imm as i16,
            }));
        }
        let rs2 = reg_operand(cur)?;
        return Ok(ParsedOp::Op(Op::Cmp { op, pd, rs1, rs2 }));
    }

    if let Some((op, explicit_imm)) = alu_from_mnemonic(mnemonic) {
        let rd = reg_operand(cur)?;
        cur.expect(Token::Equals)?;
        let rs1 = reg_operand(cur)?;
        cur.expect(Token::Comma)?;
        // Register or immediate second operand.
        if !explicit_imm {
            if let Some(Token::Ident(name)) = cur.peek() {
                if let Some(rs2) = parse_reg(name) {
                    cur.pos += 1;
                    return Ok(ParsedOp::Op(Op::AluR { op, rd, rs1, rs2 }));
                }
                return Err(format!("expected register or immediate, found `{name}`"));
            }
        }
        let imm = cur.int()?;
        Ok(ParsedOp::Op(Op::AluI {
            op,
            rd,
            rs1,
            imm: imm as i16,
        }))
    } else {
        Err(format!("unknown mnemonic `{mnemonic}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::FlowKind;

    fn ok(src: &str) -> ObjectImage {
        match assemble(src) {
            Ok(img) => img,
            Err(e) => panic!("assembly failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn minimal_program() {
        let img = ok("        .func main\n        li r1 = 5\n        halt\n");
        assert_eq!(img.code().len(), 2);
        assert_eq!(img.functions().len(), 1);
        assert_eq!(img.functions()[0].size_words, 2);
        assert_eq!(img.entry_word(), 0);
    }

    #[test]
    fn branch_offsets_resolve() {
        let img = ok(
            "        .func main\nstart:\n        nop\n        br start\n        nop\n        halt\n",
        );
        let bundles = img.decode().expect("decodes");
        // Bundle at word 1 is the branch; target word 0 => offset -1.
        let (addr, b) = &bundles[1];
        assert_eq!(*addr, 1);
        match b.first().op.flow_kind() {
            FlowKind::Branch(offset) => assert_eq!(offset, -1),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn call_targets_must_be_functions() {
        let err = assemble(
            "        .func main\n        nop\nlocal:\n        nop\n        call local\n        halt\n",
        )
        .unwrap_err();
        assert!(err.message.contains("not a function"), "{err}");
    }

    #[test]
    fn branches_may_not_leave_function() {
        let err = assemble(
            "        .func a\ntop:\n        nop\n        .func b\n        br top\n        halt\n",
        )
        .unwrap_err();
        assert!(err.message.contains("leaves function"), "{err}");
    }

    #[test]
    fn bundles_and_guards() {
        let img = ok(
            "        .func main\n        { lws r1 = [r2 + 1] ; (p1) add r3 = r4, r5 }\n        halt\n",
        );
        let bundles = img.decode().expect("decodes");
        assert_eq!(bundles[0].1.width_words(), 2);
        let second = bundles[0].1.second().expect("has second slot");
        assert_eq!(second.guard, Guard::when(Pred::P1));
    }

    #[test]
    fn data_segments_and_symbols() {
        let img = ok(
            "        .data table 0x10000\n        .word 1, 2, 3\n        .space 4\n        .byte 7\n        .func main\n        lil r1 = table\n        halt\n",
        );
        assert_eq!(img.symbol("table"), Some(0x10000));
        let seg = &img.data()[0];
        assert_eq!(seg.bytes.len(), 12 + 4 + 1);
        assert_eq!(&seg.bytes[0..4], &[1, 0, 0, 0]);
        // `lil r1 = table` resolves to the byte address.
        let bundles = img.decode().expect("decodes");
        assert!(matches!(
            bundles[0].1.first().op,
            Op::LoadImm32 { imm: 0x10000, .. }
        ));
    }

    #[test]
    fn loop_bounds_attach_to_next_bundle() {
        let img = ok(
            "        .func main\n        nop\n        .loopbound 3 10\nloop:\n        nop\n        br loop\n        nop\n        halt\n",
        );
        assert_eq!(img.loop_bounds().len(), 1);
        assert_eq!(img.loop_bounds()[0].addr, 1);
        assert_eq!(img.loop_bounds()[0].max, 10);
    }

    #[test]
    fn equ_and_entry() {
        let img = ok(
            "        .equ N 16\n        .func helper\n        ret\n        nop\n        nop\n        .func main\n        .entry main\n        li r1 = 0\n        halt\n",
        );
        assert_eq!(img.symbol("N"), Some(16));
        assert_eq!(img.entry_word(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble(".func main\nnop\nbogus r1 = r2\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn out_of_range_immediate_rejected() {
        let err = assemble(".func main\naddi r1 = r1, 5000\n").unwrap_err();
        assert!(err.message.contains("does not fit"), "{err}");
    }

    #[test]
    fn pseudo_ops_expand() {
        let img = ok(".func main\nmov r1 = r2\npmov p1 = p2\npnot p3 = p4\nhalt\n");
        let bundles = img.decode().expect("decodes");
        assert!(matches!(
            bundles[0].1.first().op,
            Op::AluR {
                op: AluOp::Add,
                rs2: Reg::R0,
                ..
            }
        ));
        assert!(matches!(bundles[1].1.first().op, Op::PredSet { .. }));
    }

    #[test]
    fn shift_and_store_half_disambiguate() {
        let img = ok(".func main\nsl r1 = r2, 3\nshl [r2 + 0] = r1\nhalt\n");
        let bundles = img.decode().expect("decodes");
        assert!(matches!(
            bundles[0].1.first().op,
            Op::AluI { op: AluOp::Shl, .. }
        ));
        assert!(matches!(
            bundles[1].1.first().op,
            Op::Store {
                area: MemArea::Spm,
                size: AccessSize::Half,
                ..
            }
        ));
    }
}
