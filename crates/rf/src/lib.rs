//! Register-file models for the Patmos dual-issue pipeline.
//!
//! The paper's evaluation (Section 5) is a feasibility study of a
//! *time-division multiplexed, double-clocked* register file: a VLIW
//! pipeline needs four read and two write ports, but FPGA block RAMs
//! offer two ports each. Since block RAMs clock far faster (>500 MHz)
//! than the surrounding pipeline, the register file can be run at twice
//! the pipeline clock, time-multiplexing two accesses per port per
//! pipeline cycle. The paper reports that with PLL-quality clocks this
//! reaches more than 200 MHz on a Xilinx Virtex-5 (speed grade 2) with
//! the ALU — not the register file — as the critical path, using only
//! two block RAMs.
//!
//! This crate reproduces both halves of that study:
//!
//! * [`DoubleClockedRf`] — a functional model that executes the exact
//!   half-cycle port schedule and proves it conflict-free;
//! * [`fpga`] — a calibrated timing/resource model that reports the
//!   achievable pipeline frequency and block-RAM cost for each register
//!   file implementation choice ([`fpga::RfImpl`]) and clock quality
//!   ([`fpga::ClockQuality`]).
//!
//! # Example
//!
//! ```
//! use patmos_isa::Reg;
//! use patmos_rf::DoubleClockedRf;
//!
//! let mut rf = DoubleClockedRf::new();
//! let _ = rf.cycle([Reg::R0; 4], [Some((Reg::R1, 42)), None]);
//! let values = rf.cycle([Reg::R1, Reg::R0, Reg::R1, Reg::R0], [None, None]);
//! assert_eq!(values, [42, 0, 42, 0]);
//! ```

pub mod fpga;
mod tdm;

pub use tdm::{DoubleClockedRf, PortAccess, PortKind, NUM_BRAMS};
