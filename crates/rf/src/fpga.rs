//! FPGA timing and resource model for the register-file study.
//!
//! The paper's hardware evaluation (Section 5) was a VHDL prototype on a
//! Xilinx Virtex-5 (speed grade 2). We cannot synthesise VHDL here, so
//! this module substitutes a *calibrated static timing model*: component
//! delays are set so that the published anchor points hold — block RAMs
//! clock above 500 MHz, and the complete double-clocked pipeline reaches
//! a little over 200 MHz with the 32-bit ALU as the critical path. The
//! model then lets us sweep the design space the paper discusses
//! (register-file implementation × clock quality) and reproduces the
//! *shape* of its findings:
//!
//! * double-clocked TDM on block RAM: >200 MHz, ALU-limited, 2 block RAMs;
//! * the same with poorly derived clocks: the doubled clock path becomes
//!   critical and the system slows down ("the performance of the system
//!   greatly depends on the quality of the clocks");
//! * classic multi-port implementations: no block RAM can provide 4R+2W,
//!   so replication-plus-LUT-mux or flip-flop arrays cost far more
//!   resources and clock below the block-RAM solution.

use std::fmt;

/// How the 4-read/2-write register file is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfImpl {
    /// Two true-dual-port block RAMs clocked at twice the pipeline clock
    /// (the Patmos approach).
    DoubleClockedTdm,
    /// Replicated block RAMs at the pipeline clock: one copy per read
    /// port per write port (classic XOR/LVT-style multi-porting).
    ReplicatedBram,
    /// A register file built from flip-flops with LUT read multiplexers.
    FlipFlopArray,
}

impl RfImpl {
    /// All implementation choices.
    pub const ALL: [RfImpl; 3] = [
        RfImpl::DoubleClockedTdm,
        RfImpl::ReplicatedBram,
        RfImpl::FlipFlopArray,
    ];
}

impl fmt::Display for RfImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RfImpl::DoubleClockedTdm => "double-clocked TDM block RAM",
            RfImpl::ReplicatedBram => "replicated block RAM (4R2W)",
            RfImpl::FlipFlopArray => "flip-flop array + LUT mux",
        };
        f.write_str(name)
    }
}

/// How the doubled register-file clock is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockQuality {
    /// Derived from an accurate PLL; negligible skew between the two
    /// clock domains.
    Pll,
    /// Derived combinationally (e.g. gated/ripple); large skew margin
    /// must be budgeted on every domain crossing.
    Derived,
}

impl ClockQuality {
    /// All clock-generation choices.
    pub const ALL: [ClockQuality; 2] = [ClockQuality::Pll, ClockQuality::Derived];

    /// Skew margin charged per crossing between the 1x and 2x domains,
    /// in nanoseconds.
    pub fn skew_ns(self) -> f64 {
        match self {
            ClockQuality::Pll => 0.10,
            ClockQuality::Derived => 1.25,
        }
    }
}

impl fmt::Display for ClockQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockQuality::Pll => f.write_str("PLL"),
            ClockQuality::Derived => f.write_str("derived"),
        }
    }
}

/// Calibrated component delays of the target device, in nanoseconds.
///
/// Defaults model a Virtex-5, speed grade 2: block RAM minimum clock
/// period just under 2 ns (>500 MHz, per the paper), a 32-bit ALU with
/// carry chain plus result forwarding multiplexers a little under 5 ns
/// (so the full pipeline lands slightly above 200 MHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceTiming {
    /// Minimum block-RAM clock period.
    pub bram_period_ns: f64,
    /// ALU stage: operand forwarding mux + 32-bit add/logic + result mux.
    pub alu_path_ns: f64,
    /// Decode stage logic depth.
    pub decode_path_ns: f64,
    /// Fetch stage: PC mux + method-cache RAM address setup.
    pub fetch_path_ns: f64,
    /// Extra routing/mux delay per additional read-port copy a LUT-based
    /// multiplexer has to merge.
    pub mux_per_port_ns: f64,
    /// Read path of a LUT-RAM/flip-flop register file before muxing.
    pub ff_read_ns: f64,
}

impl Default for DeviceTiming {
    fn default() -> DeviceTiming {
        DeviceTiming {
            bram_period_ns: 1.9,
            alu_path_ns: 4.8,
            decode_path_ns: 3.4,
            fetch_path_ns: 3.0,
            mux_per_port_ns: 0.9,
            ff_read_ns: 2.2,
        }
    }
}

/// The pipeline element that limits the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CriticalPath {
    /// The execute stage's ALU.
    Alu,
    /// The register-file access path.
    RegisterFile,
    /// Decode logic.
    Decode,
    /// Fetch/PC logic.
    Fetch,
}

impl fmt::Display for CriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CriticalPath::Alu => "ALU",
            CriticalPath::RegisterFile => "register file",
            CriticalPath::Decode => "decode",
            CriticalPath::Fetch => "fetch",
        };
        f.write_str(name)
    }
}

/// Result of evaluating one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// The register-file implementation evaluated.
    pub rf_impl: RfImpl,
    /// The clock generation evaluated.
    pub clock: ClockQuality,
    /// Maximum pipeline clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Which stage limits the clock.
    pub critical_path: CriticalPath,
    /// Block RAMs consumed by the register file.
    pub block_rams: u32,
    /// Flip-flops consumed by the register file.
    pub flip_flops: u32,
    /// LUTs consumed by the register file (read muxes, write decoding).
    pub luts: u32,
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} clock: {:.0} MHz (critical path: {}), {} BRAM, {} FF, {} LUT",
            self.rf_impl,
            self.clock,
            self.fmax_mhz,
            self.critical_path,
            self.block_rams,
            self.flip_flops,
            self.luts
        )
    }
}

/// Evaluates the pipeline timing for one register-file implementation and
/// clock choice.
///
/// # Example
///
/// ```
/// use patmos_rf::fpga::{evaluate, ClockQuality, DeviceTiming, RfImpl, CriticalPath};
///
/// let report = evaluate(DeviceTiming::default(), RfImpl::DoubleClockedTdm, ClockQuality::Pll);
/// assert!(report.fmax_mhz > 200.0, "the paper's headline number");
/// assert_eq!(report.critical_path, CriticalPath::Alu);
/// assert_eq!(report.block_rams, 2);
/// ```
pub fn evaluate(device: DeviceTiming, rf_impl: RfImpl, clock: ClockQuality) -> TimingReport {
    // Register-file path constraint, expressed as the minimum pipeline
    // period it imposes, plus its resource cost.
    let (rf_period_ns, block_rams, flip_flops, luts) = match rf_impl {
        RfImpl::DoubleClockedTdm => {
            // The RF runs at 2x: pipeline period must be at least twice
            // the (BRAM period + domain-crossing skew).
            let p = 2.0 * (device.bram_period_ns + clock.skew_ns());
            (p, 2, 64, 120)
        }
        RfImpl::ReplicatedBram => {
            // 4 read ports x 2 write banks = 8 copies, plus a live-value
            // table in LUTs and a merge mux on every read port.
            let p = device.bram_period_ns + 2.0 * device.mux_per_port_ns + clock.skew_ns() * 0.0;
            (p, 8, 160, 700)
        }
        RfImpl::FlipFlopArray => {
            // 32 registers x 32 bits in flip-flops; each of 4 read ports
            // needs a 32:1 x 32-bit LUT mux tree.
            let p = device.ff_read_ns + 4.0 * device.mux_per_port_ns;
            (p, 0, 1024, 1400)
        }
    };

    let candidates = [
        (CriticalPath::Alu, device.alu_path_ns),
        (CriticalPath::RegisterFile, rf_period_ns),
        (CriticalPath::Decode, device.decode_path_ns),
        (CriticalPath::Fetch, device.fetch_path_ns),
    ];
    let (critical_path, period) = candidates
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("delays are finite"))
        .expect("non-empty candidate list");

    TimingReport {
        rf_impl,
        clock,
        fmax_mhz: 1000.0 / period,
        critical_path,
        block_rams,
        flip_flops,
        luts,
    }
}

/// Evaluates the full design space (all implementations × all clocks).
pub fn sweep(device: DeviceTiming) -> Vec<TimingReport> {
    let mut out = Vec::new();
    for rf_impl in RfImpl::ALL {
        for clock in ClockQuality::ALL {
            out.push(evaluate(device, rf_impl, clock));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_eval(rf: RfImpl, clk: ClockQuality) -> TimingReport {
        evaluate(DeviceTiming::default(), rf, clk)
    }

    #[test]
    fn paper_headline_tdm_pll_exceeds_200mhz() {
        let r = default_eval(RfImpl::DoubleClockedTdm, ClockQuality::Pll);
        assert!(r.fmax_mhz > 200.0, "got {:.1} MHz", r.fmax_mhz);
        assert_eq!(
            r.critical_path,
            CriticalPath::Alu,
            "ALU remains the critical path"
        );
        assert_eq!(r.block_rams, 2, "only two block RAMs");
    }

    #[test]
    fn derived_clock_degrades_tdm() {
        let pll = default_eval(RfImpl::DoubleClockedTdm, ClockQuality::Pll);
        let derived = default_eval(RfImpl::DoubleClockedTdm, ClockQuality::Derived);
        assert!(derived.fmax_mhz < pll.fmax_mhz);
        assert_eq!(
            derived.critical_path,
            CriticalPath::RegisterFile,
            "with bad clocks the doubled RF path dominates"
        );
    }

    #[test]
    fn replication_costs_more_brams() {
        let tdm = default_eval(RfImpl::DoubleClockedTdm, ClockQuality::Pll);
        let rep = default_eval(RfImpl::ReplicatedBram, ClockQuality::Pll);
        assert!(rep.block_rams > tdm.block_rams);
        assert!(rep.luts > tdm.luts);
    }

    #[test]
    fn clock_quality_does_not_affect_single_clock_designs() {
        for rf in [RfImpl::ReplicatedBram, RfImpl::FlipFlopArray] {
            let a = default_eval(rf, ClockQuality::Pll);
            let b = default_eval(rf, ClockQuality::Derived);
            assert_eq!(a.fmax_mhz, b.fmax_mhz);
        }
    }

    #[test]
    fn sweep_covers_design_space() {
        let reports = sweep(DeviceTiming::default());
        assert_eq!(reports.len(), RfImpl::ALL.len() * ClockQuality::ALL.len());
    }

    #[test]
    fn fmax_is_positive_and_finite() {
        for r in sweep(DeviceTiming::default()) {
            assert!(r.fmax_mhz.is_finite() && r.fmax_mhz > 0.0, "{r}");
        }
    }
}
