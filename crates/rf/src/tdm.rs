//! Functional model of the double-clocked TDM register file.
//!
//! Two block RAMs each hold a full copy of the 32-entry register file.
//! Each block RAM is true dual-port (ports `A` and `B`), and the RAMs run
//! at twice the pipeline clock, giving each port two accesses per
//! pipeline cycle — eight accesses total, scheduled as four reads (two
//! per issue slot) and two writes mirrored into both copies:
//!
//! ```text
//!            half-cycle 0                half-cycle 1
//! BRAM0.A    read  slot1.rs1             read  slot2.rs1
//! BRAM0.B    write slot1.rd (copy 0)     write slot2.rd (copy 0)
//! BRAM1.A    read  slot1.rs2             read  slot2.rs2
//! BRAM1.B    write slot1.rd (copy 1)     write slot2.rd (copy 1)
//! ```
//!
//! Because current FPGAs return stale or undefined data on a same-address
//! read-during-write, the register file "contains an internal forwarding
//! path" (paper, Section 3.2); this model therefore makes a write visible
//! to reads of the same pipeline cycle.

use patmos_isa::{Reg, NUM_REGS};

/// Number of physical block RAMs used — the headline resource result of
/// the paper's Section 5.
pub const NUM_BRAMS: usize = 2;

/// What a port does in one half-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// The port is idle this half-cycle.
    Idle,
    /// Read of a register.
    Read(Reg),
    /// Write of a value to a register.
    Write(Reg, u32),
}

/// One scheduled access: which RAM, which port, which half-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortAccess {
    /// Block RAM index (`0` or `1`).
    pub bram: usize,
    /// Port within the RAM (`0` = A, `1` = B).
    pub port: usize,
    /// Half-cycle within the pipeline cycle (`0` or `1`).
    pub half: usize,
    /// The operation performed.
    pub kind: PortKind,
}

/// The double-clocked, time-division multiplexed register file.
///
/// The model keeps the two block-RAM copies separately and checks on
/// every cycle that the port schedule is conflict-free and that the
/// copies stay coherent — the invariants the VHDL prototype had to
/// establish.
#[derive(Debug, Clone)]
pub struct DoubleClockedRf {
    copies: [[u32; NUM_REGS]; NUM_BRAMS],
    last_schedule: Vec<PortAccess>,
}

impl Default for DoubleClockedRf {
    fn default() -> Self {
        Self::new()
    }
}

impl DoubleClockedRf {
    /// A zero-initialised register file.
    pub fn new() -> DoubleClockedRf {
        DoubleClockedRf {
            copies: [[0; NUM_REGS]; NUM_BRAMS],
            last_schedule: Vec::new(),
        }
    }

    /// The port schedule executed by the most recent [`Self::cycle`] call
    /// (for inspection and conformance tests).
    pub fn last_schedule(&self) -> &[PortAccess] {
        &self.last_schedule
    }

    /// Reads a register directly (debug/verification access, not a port).
    pub fn peek(&self, reg: Reg) -> u32 {
        self.copies[0][reg.index() as usize]
    }

    /// Executes one pipeline cycle: up to two write-backs and four reads
    /// (`[slot1.rs1, slot1.rs2, slot2.rs1, slot2.rs2]`).
    ///
    /// Writes are applied through the internal forwarding path, so reads
    /// in the same cycle observe them. Writes to `r0` are discarded.
    ///
    /// # Panics
    ///
    /// Panics if both writes target the same register with different
    /// values — an illegal bundle the encoder already rejects.
    pub fn cycle(&mut self, reads: [Reg; 4], writes: [Option<(Reg, u32)>; 2]) -> [u32; 4] {
        if let (Some((a, va)), Some((b, vb))) = (writes[0], writes[1]) {
            assert!(
                a != b || va == vb || a.is_zero(),
                "conflicting writes to {a} in one cycle"
            );
        }

        let mut schedule = Vec::with_capacity(8);
        // Writes are mirrored into both copies: BRAM0/1 port B.
        for (half, w) in writes.iter().enumerate() {
            for bram in 0..NUM_BRAMS {
                let kind = match w {
                    Some((reg, val)) => PortKind::Write(*reg, *val),
                    None => PortKind::Idle,
                };
                schedule.push(PortAccess {
                    bram,
                    port: 1,
                    half,
                    kind,
                });
            }
        }
        // Reads: slot1 in half 0, slot2 in half 1; rs1 from BRAM0.A,
        // rs2 from BRAM1.A.
        for (i, reg) in reads.iter().enumerate() {
            let half = i / 2;
            let bram = i % 2;
            schedule.push(PortAccess {
                bram,
                port: 0,
                half,
                kind: PortKind::Read(*reg),
            });
        }
        Self::check_conflict_free(&schedule);

        // Apply writes first (internal forwarding path).
        for w in writes.into_iter().flatten() {
            let (reg, val) = w;
            if !reg.is_zero() {
                for copy in &mut self.copies {
                    copy[reg.index() as usize] = val;
                }
            }
        }
        let out = [
            self.copies[0][reads[0].index() as usize],
            self.copies[1][reads[1].index() as usize],
            self.copies[0][reads[2].index() as usize],
            self.copies[1][reads[3].index() as usize],
        ];
        self.last_schedule = schedule;
        debug_assert_eq!(self.copies[0], self.copies[1], "copies diverged");
        out
    }

    fn check_conflict_free(schedule: &[PortAccess]) {
        let mut seen = [[[false; 2]; 2]; NUM_BRAMS];
        for acc in schedule {
            let slot = &mut seen[acc.bram][acc.port][acc.half];
            assert!(
                !*slot,
                "port conflict: bram {} port {} half {}",
                acc.bram, acc.port, acc.half
            );
            *slot = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_next_cycle() {
        let mut rf = DoubleClockedRf::new();
        rf.cycle([Reg::R0; 4], [Some((Reg::R5, 123)), None]);
        let v = rf.cycle([Reg::R5; 4], [None, None]);
        assert_eq!(v, [123; 4]);
    }

    #[test]
    fn internal_forwarding_same_cycle() {
        let mut rf = DoubleClockedRf::new();
        let v = rf.cycle(
            [Reg::R7, Reg::R0, Reg::R0, Reg::R7],
            [Some((Reg::R7, 9)), None],
        );
        assert_eq!(v[0], 9, "read-during-write forwards the new value");
        assert_eq!(v[3], 9);
    }

    #[test]
    fn r0_is_immutable() {
        let mut rf = DoubleClockedRf::new();
        rf.cycle([Reg::R0; 4], [Some((Reg::R0, 55)), Some((Reg::R1, 1))]);
        let v = rf.cycle([Reg::R0; 4], [None, None]);
        assert_eq!(v, [0; 4]);
    }

    #[test]
    fn dual_writes_land_in_both_copies() {
        let mut rf = DoubleClockedRf::new();
        rf.cycle([Reg::R0; 4], [Some((Reg::R1, 10)), Some((Reg::R2, 20))]);
        // rs2 reads come from the second copy.
        let v = rf.cycle([Reg::R1, Reg::R1, Reg::R2, Reg::R2], [None, None]);
        assert_eq!(v, [10, 10, 20, 20]);
    }

    #[test]
    fn schedule_uses_two_brams_and_is_full() {
        let mut rf = DoubleClockedRf::new();
        rf.cycle(
            [Reg::R1, Reg::R2, Reg::R3, Reg::R4],
            [Some((Reg::R5, 1)), Some((Reg::R6, 2))],
        );
        let schedule = rf.last_schedule();
        assert_eq!(schedule.len(), 8, "4 reads + 2 writes x 2 copies");
        assert!(schedule.iter().all(|a| a.bram < NUM_BRAMS));
        let reads = schedule
            .iter()
            .filter(|a| matches!(a.kind, PortKind::Read(_)))
            .count();
        assert_eq!(reads, 4);
    }

    #[test]
    #[should_panic(expected = "conflicting writes")]
    fn conflicting_writes_rejected() {
        let mut rf = DoubleClockedRf::new();
        rf.cycle([Reg::R0; 4], [Some((Reg::R1, 1)), Some((Reg::R1, 2))]);
    }
}
