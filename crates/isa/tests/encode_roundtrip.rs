//! Property tests: every constructible bundle survives an encode/decode
//! round trip, and arbitrary words never panic the decoder.

use proptest::prelude::*;

use patmos_isa::{
    decode, encode, AccessSize, AluOp, Bundle, CmpOp, Guard, Inst, MemArea, Op, Pred, PredOp,
    PredSrc, Reg, SpecialReg,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::from_index)
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    (0u8..8).prop_map(Pred::from_index)
}

fn arb_guard() -> impl Strategy<Value = Guard> {
    (arb_pred(), any::<bool>()).prop_map(|(pred, negate)| Guard { pred, negate })
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(CmpOp::ALL.to_vec())
}

fn arb_area() -> impl Strategy<Value = MemArea> {
    prop::sample::select(MemArea::ALL.to_vec())
}

fn arb_size() -> impl Strategy<Value = AccessSize> {
    prop::sample::select(AccessSize::ALL.to_vec())
}

fn arb_pred_src() -> impl Strategy<Value = PredSrc> {
    (arb_pred(), any::<bool>()).prop_map(|(pred, negate)| PredSrc { pred, negate })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Nop),
        Just(Op::Halt),
        Just(Op::Ret),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Op::AluR {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_alu_op(), arb_reg(), arb_reg(), -2048i16..=2047)
            .prop_map(|(op, rd, rs1, imm)| Op::AluI { op, rd, rs1, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rs1, rs2)| Op::Mul { rs1, rs2 }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Op::LoadImmLow { rd, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Op::LoadImmHigh { rd, imm }),
        (arb_reg(), any::<u32>()).prop_map(|(rd, imm)| Op::LoadImm32 { rd, imm }),
        (arb_cmp_op(), arb_pred(), arb_reg(), arb_reg()).prop_map(|(op, pd, rs1, rs2)| Op::Cmp {
            op,
            pd,
            rs1,
            rs2
        }),
        (arb_cmp_op(), arb_pred(), arb_reg(), -1024i16..=1023)
            .prop_map(|(op, pd, rs1, imm)| Op::CmpI { op, pd, rs1, imm }),
        (
            prop::sample::select(PredOp::ALL.to_vec()),
            arb_pred(),
            arb_pred_src(),
            arb_pred_src()
        )
            .prop_map(|(op, pd, p1, p2)| Op::PredSet { op, pd, p1, p2 }),
        (arb_area(), arb_size(), arb_reg(), arb_reg(), -64i16..=63).prop_map(
            |(area, size, rd, ra, offset)| Op::Load {
                area,
                size,
                rd,
                ra,
                offset
            }
        ),
        (arb_area(), arb_size(), arb_reg(), -64i16..=63, arb_reg()).prop_map(
            |(area, size, ra, offset, rs)| Op::Store {
                area,
                size,
                ra,
                offset,
                rs
            }
        ),
        (arb_reg(), -2048i16..=2047).prop_map(|(ra, offset)| Op::MainLoad { ra, offset }),
        arb_reg().prop_map(|rd| Op::MainWait { rd }),
        (arb_reg(), -2048i16..=2047, arb_reg()).prop_map(|(ra, offset, rs)| Op::MainStore {
            ra,
            offset,
            rs
        }),
        (-(1i32 << 21)..(1 << 21)).prop_map(|offset| Op::Br { offset }),
        (-(1i32 << 21)..(1 << 21)).prop_map(|offset| Op::Call { offset }),
        arb_reg().prop_map(|rs| Op::CallR { rs }),
        (0u32..(1 << 22)).prop_map(|words| Op::Sres { words }),
        (0u32..(1 << 22)).prop_map(|words| Op::Sens { words }),
        (0u32..(1 << 22)).prop_map(|words| Op::Sfree { words }),
        (prop::sample::select(SpecialReg::ALL.to_vec()), arb_reg())
            .prop_map(|(sd, rs)| Op::Mts { sd, rs }),
        (arb_reg(), prop::sample::select(SpecialReg::ALL.to_vec()))
            .prop_map(|(rd, ss)| Op::Mfs { rd, ss }),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (arb_guard(), arb_op()).prop_map(|(guard, op)| Inst { guard, op })
}

proptest! {
    #[test]
    fn single_bundle_round_trips(inst in arb_inst()) {
        let bundle = Bundle::single(inst);
        let words = encode(&bundle);
        let (decoded, used) = decode(&words).expect("decodes");
        prop_assert_eq!(decoded, bundle);
        prop_assert_eq!(used, words.len());
    }

    #[test]
    fn pair_bundle_round_trips(first in arb_inst(), second in arb_inst()) {
        if let Ok(bundle) = Bundle::try_pair(first, second) {
            let words = encode(&bundle);
            let (decoded, used) = decode(&words).expect("decodes");
            prop_assert_eq!(decoded, bundle);
            prop_assert_eq!(used, 2);
        }
    }

    #[test]
    fn decoder_never_panics(words in prop::collection::vec(any::<u32>(), 1..4)) {
        let _ = decode(&words);
    }

    #[test]
    fn decode_is_idempotent(words in prop::collection::vec(any::<u32>(), 2)) {
        // Whatever decodes must re-encode to words that decode to the same
        // bundle (don't-care bits are canonicalised to zero on re-encode).
        if let Ok((bundle, _)) = decode(&words) {
            let back = encode(&bundle);
            let (again, _) = decode(&back).expect("re-encoded bundle decodes");
            prop_assert_eq!(again, bundle);
        }
    }
}
