//! Instruction-set architecture of the Patmos time-predictable processor.
//!
//! Patmos (Schoeberl et al., *Towards a Time-predictable Dual-Issue
//! Microprocessor: The Patmos Approach*, PPES 2011) is a 32-bit, statically
//! scheduled, dual-issue RISC processor whose instruction delays are fully
//! visible at the ISA level. This crate defines that ISA:
//!
//! * [`Reg`], [`Pred`] and [`SpecialReg`] — the register files;
//! * [`Op`], [`Inst`] and [`Bundle`] — operations, guarded instructions and
//!   the one- or two-slot VLIW issue bundles;
//! * [`encode`](encode()) / [`decode`](decode()) — the 32/64-bit binary
//!   bundle format (the first word of a bundle carries its length bit);
//! * [`MemArea`] — the typed memory areas selected by typed load/store
//!   instructions (stack cache, static-data cache, heap data cache,
//!   scratchpad, and main memory via split loads);
//! * [`timing`] — the architecturally visible delays (branch delay slots,
//!   load-use gaps, multiply gap) that the compiler must respect and that
//!   the WCET analysis relies on.
//!
//! # Example
//!
//! Build, encode and decode a two-slot bundle:
//!
//! ```
//! use patmos_isa::{AluOp, Bundle, Inst, Op, Reg};
//!
//! # fn main() -> Result<(), patmos_isa::DecodeError> {
//! let bundle = Bundle::pair(
//!     Inst::always(Op::AluR { op: AluOp::Add, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }),
//!     Inst::always(Op::AluI { op: AluOp::Sub, rd: Reg::R4, rs1: Reg::R4, imm: 1 }),
//! );
//! let words = patmos_isa::encode(&bundle);
//! let (decoded, len) = patmos_isa::decode(&words)?;
//! assert_eq!(decoded, bundle);
//! assert_eq!(len, 2);
//! # Ok(())
//! # }
//! ```

pub mod encoding;
pub mod inst;
pub mod mem;
pub mod reg;
pub mod timing;

pub use encoding::{decode, decode_all, encode, DecodeError};
pub use inst::{AluOp, Bundle, BundleError, CmpOp, FlowKind, Guard, Inst, Op, PredOp, PredSrc};
pub use mem::{AccessSize, MemArea};
pub use reg::{Pred, Reg, SpecialReg};

/// Number of general-purpose registers (`r0` is hard-wired to zero).
pub const NUM_REGS: usize = 32;
/// Number of predicate registers (`p0` is hard-wired to true).
pub const NUM_PREDS: usize = 8;
/// Register that receives the return address on `call`.
pub const LINK_REG: Reg = Reg::R31;
/// Shadow-stack pointer register by ABI convention (for address-taken
/// locals that cannot live in the stack cache).
pub const SHADOW_SP: Reg = Reg::R29;
