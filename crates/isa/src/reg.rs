//! Register files of Patmos: 32 general-purpose registers, 8 predicate
//! registers, and a small set of special registers.

use std::fmt;

/// A general-purpose 32-bit register, `r0`–`r31`.
///
/// `r0` always reads as zero; writes to it are ignored. `r31` is the link
/// register written by `call`. The register file is shared between the two
/// issue slots with full forwarding (paper, Section 3.2).
///
/// # Example
///
/// ```
/// use patmos_isa::Reg;
/// let r = Reg::new(5).expect("valid index");
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

#[allow(missing_docs)]
impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R29: Reg = Reg(29);
    pub const R30: Reg = Reg(30);
    pub const R31: Reg = Reg(31);
}

impl Reg {
    /// Creates a register from its index.
    ///
    /// Returns `None` if `index` is not in `0..32`.
    pub fn new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// Creates a register from its index without bounds checking the value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `0..32`.
    #[inline]
    pub fn from_index(index: u8) -> Reg {
        Reg::new(index).expect("register index must be in 0..32")
    }

    /// The register index, in `0..32`.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is `r0`, the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A predicate register, `p0`–`p7`.
///
/// Every Patmos instruction is guarded by a (possibly negated) predicate
/// (paper, Section 3.1). `p0` always reads as true, so an instruction
/// guarded by non-negated `p0` executes unconditionally.
///
/// # Example
///
/// ```
/// use patmos_isa::Pred;
/// assert!(Pred::P0.is_always_true());
/// assert_eq!(Pred::new(3).expect("valid").to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(u8);

#[allow(missing_docs)]
impl Pred {
    pub const P0: Pred = Pred(0);
    pub const P1: Pred = Pred(1);
    pub const P2: Pred = Pred(2);
    pub const P3: Pred = Pred(3);
    pub const P4: Pred = Pred(4);
    pub const P5: Pred = Pred(5);
    pub const P6: Pred = Pred(6);
    pub const P7: Pred = Pred(7);
}

impl Pred {
    /// Creates a predicate register from its index.
    ///
    /// Returns `None` if `index` is not in `0..8`.
    pub fn new(index: u8) -> Option<Pred> {
        (index < 8).then_some(Pred(index))
    }

    /// Creates a predicate register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `0..8`.
    #[inline]
    pub fn from_index(index: u8) -> Pred {
        Pred::new(index).expect("predicate index must be in 0..8")
    }

    /// The predicate index, in `0..8`.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is `p0`, which always reads true.
    #[inline]
    pub fn is_always_true(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A special register, accessed with `mfs`/`mts`.
///
/// Special registers hold results of long-latency units (multiplier,
/// main-memory controller) and the stack-cache management pointers, keeping
/// those delays out of the general register file's forwarding network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpecialReg {
    /// Low 32 bits of the last multiply result.
    Sl,
    /// High 32 bits of the last multiply result.
    Sh,
    /// Result of the last split main-memory load (also readable via the
    /// dedicated waiting move, `Op::MainWait`).
    Sm,
    /// Stack-cache top-of-stack pointer (word address in main memory).
    St,
    /// Stack-cache spill pointer: lowest stack address still held in main
    /// memory rather than in the cache.
    Ss,
}

impl SpecialReg {
    /// All special registers in encoding order.
    pub const ALL: [SpecialReg; 5] = [
        SpecialReg::Sl,
        SpecialReg::Sh,
        SpecialReg::Sm,
        SpecialReg::St,
        SpecialReg::Ss,
    ];

    /// The 4-bit encoding of this special register.
    pub fn code(self) -> u8 {
        match self {
            SpecialReg::Sl => 0,
            SpecialReg::Sh => 1,
            SpecialReg::Sm => 2,
            SpecialReg::St => 3,
            SpecialReg::Ss => 4,
        }
    }

    /// Decodes a special register from its 4-bit code.
    pub fn from_code(code: u8) -> Option<SpecialReg> {
        SpecialReg::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SpecialReg::Sl => "sl",
            SpecialReg::Sh => "sh",
            SpecialReg::Sm => "sm",
            SpecialReg::St => "st",
            SpecialReg::Ss => "ss",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert!(Reg::new(31).is_some());
        assert!(Reg::new(32).is_none());
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn pred_bounds() {
        assert!(Pred::new(7).is_some());
        assert!(Pred::new(8).is_none());
        assert!(Pred::P0.is_always_true());
        assert!(!Pred::P1.is_always_true());
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::R31.to_string(), "r31");
        assert_eq!(Pred::P7.to_string(), "p7");
        assert_eq!(SpecialReg::Sm.to_string(), "sm");
    }

    #[test]
    fn special_reg_codes_round_trip() {
        for s in SpecialReg::ALL {
            assert_eq!(SpecialReg::from_code(s.code()), Some(s));
        }
        assert_eq!(SpecialReg::from_code(15), None);
    }

    #[test]
    #[should_panic(expected = "register index")]
    fn reg_from_index_panics() {
        let _ = Reg::from_index(40);
    }
}
