//! Binary encoding of Patmos bundles.
//!
//! Instructions are 32-bit words. The most significant bit of the *first*
//! word of a bundle is the length bit: when set, the bundle is 64 bits
//! wide and a second word follows (paper, Section 3.1). Register fields
//! sit at fixed positions so the register file can be read in parallel
//! with decoding.
//!
//! Word layout (first and second slot alike):
//!
//! ```text
//!  31   30..28  27     26..22   21..0
//!  SIZE PRED    NEGATE OPCODE   operands
//! ```
//!
//! A bundle whose first slot is `lil` (32-bit immediate load) uses the
//! entire second word as the immediate.

use std::fmt;

use crate::inst::{AluOp, Bundle, CmpOp, Guard, Inst, Op, PredOp, PredSrc};
use crate::mem::{AccessSize, MemArea};
use crate::reg::{Pred, Reg, SpecialReg};

const SIZE_BIT: u32 = 1 << 31;

mod opcode {
    pub const NOP_HALT: u32 = 0;
    pub const ALU_R: u32 = 1;
    pub const ALU_I_BASE: u32 = 2; // 2..=10, one per AluOp
    pub const MUL: u32 = 11;
    pub const LI_LOW: u32 = 12;
    pub const LI_HIGH: u32 = 13;
    pub const LI_LONG: u32 = 14;
    pub const CMP: u32 = 15;
    pub const CMP_I: u32 = 16;
    pub const PRED_SET: u32 = 17;
    pub const LOAD: u32 = 18;
    pub const STORE: u32 = 19;
    pub const MAIN_LOAD: u32 = 20;
    pub const MAIN_WAIT: u32 = 21;
    pub const MAIN_STORE: u32 = 22;
    pub const BR: u32 = 23;
    pub const CALL: u32 = 24;
    pub const CALL_R: u32 = 25;
    pub const RET: u32 = 26;
    pub const SRES: u32 = 27;
    pub const SENS: u32 = 28;
    pub const SFREE: u32 = 29;
    pub const MTS: u32 = 30;
    pub const MFS: u32 = 31;
}

/// The reason a word sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input slice was empty, or the bundle's length bit asked for a
    /// second word that is not there.
    Truncated,
    /// An opcode or sub-field does not correspond to any instruction.
    InvalidEncoding {
        /// The offending word.
        word: u32,
    },
    /// The decoded pair of slots violates the bundle rules (e.g. a
    /// memory operation in the second slot).
    IllegalBundle {
        /// The offending second word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("bundle truncated"),
            DecodeError::InvalidEncoding { word } => {
                write!(f, "invalid instruction encoding {word:#010x}")
            }
            DecodeError::IllegalBundle { word } => {
                write!(f, "illegal second-slot instruction {word:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The reason an operation cannot be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldRangeError {
    /// Description of the offending field.
    pub field: &'static str,
    /// The value that does not fit.
    pub value: i64,
}

impl fmt::Display for FieldRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} does not fit in field {}",
            self.value, self.field
        )
    }
}

impl std::error::Error for FieldRangeError {}

fn check_signed(field: &'static str, value: i64, bits: u32) -> Result<(), FieldRangeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(FieldRangeError { field, value });
    }
    Ok(())
}

fn check_unsigned(field: &'static str, value: u64, bits: u32) -> Result<(), FieldRangeError> {
    if value >= (1u64 << bits) {
        return Err(FieldRangeError {
            field,
            value: value as i64,
        });
    }
    Ok(())
}

/// Checks that every immediate and offset of `op` fits its encoding field.
///
/// # Errors
///
/// Returns the first field whose value is out of range.
///
/// # Example
///
/// ```
/// use patmos_isa::{AluOp, Op, Reg};
/// use patmos_isa::encoding::validate_op;
///
/// let ok = Op::AluI { op: AluOp::Add, rd: Reg::R1, rs1: Reg::R1, imm: 2047 };
/// assert!(validate_op(&ok).is_ok());
/// let bad = Op::AluI { op: AluOp::Add, rd: Reg::R1, rs1: Reg::R1, imm: 2048 };
/// assert!(validate_op(&bad).is_err());
/// ```
pub fn validate_op(op: &Op) -> Result<(), FieldRangeError> {
    match *op {
        Op::AluI { imm, .. } => check_signed("aluI immediate (12 bits)", imm as i64, 12),
        Op::CmpI { imm, .. } => check_signed("cmpI immediate (11 bits)", imm as i64, 11),
        Op::Load { offset, .. } | Op::Store { offset, .. } => {
            check_signed("typed access offset (7 bits)", offset as i64, 7)
        }
        Op::MainLoad { offset, .. } | Op::MainStore { offset, .. } => {
            check_signed("main-memory offset (12 bits)", offset as i64, 12)
        }
        Op::Br { offset } | Op::Call { offset } => {
            check_signed("branch offset (22 bits)", offset as i64, 22)
        }
        Op::Sres { words } | Op::Sens { words } | Op::Sfree { words } => {
            check_unsigned("stack-cache size (22 bits)", words as u64, 22)
        }
        _ => Ok(()),
    }
}

fn guard_bits(g: Guard) -> u32 {
    ((g.pred.index() as u32) << 28) | ((g.negate as u32) << 27)
}

fn op_bits(op: &Op) -> u32 {
    let oc = |c: u32| c << 22;
    let r = |r: Reg, pos: u32| (r.index() as u32) << pos;
    let p = |p: Pred, pos: u32| (p.index() as u32) << pos;
    match *op {
        Op::Nop => oc(opcode::NOP_HALT),
        Op::Halt => oc(opcode::NOP_HALT) | 1,
        Op::AluR { op, rd, rs1, rs2 } => {
            oc(opcode::ALU_R) | r(rd, 17) | r(rs1, 12) | r(rs2, 7) | op.code() as u32
        }
        Op::AluI { op, rd, rs1, imm } => {
            oc(opcode::ALU_I_BASE + op.code() as u32)
                | r(rd, 17)
                | r(rs1, 12)
                | ((imm as u32) & 0xfff)
        }
        Op::Mul { rs1, rs2 } => oc(opcode::MUL) | r(rs1, 12) | r(rs2, 7),
        Op::LoadImmLow { rd, imm } => oc(opcode::LI_LOW) | r(rd, 17) | imm as u32,
        Op::LoadImmHigh { rd, imm } => oc(opcode::LI_HIGH) | r(rd, 17) | imm as u32,
        Op::LoadImm32 { rd, .. } => oc(opcode::LI_LONG) | r(rd, 17),
        Op::Cmp { op, pd, rs1, rs2 } => {
            oc(opcode::CMP) | ((op.code() as u32) << 19) | p(pd, 16) | r(rs1, 11) | r(rs2, 6)
        }
        Op::CmpI { op, pd, rs1, imm } => {
            oc(opcode::CMP_I)
                | ((op.code() as u32) << 19)
                | p(pd, 16)
                | r(rs1, 11)
                | ((imm as u32) & 0x7ff)
        }
        Op::PredSet { op, pd, p1, p2 } => {
            oc(opcode::PRED_SET)
                | ((op.code() as u32) << 20)
                | p(pd, 16)
                | ((p1.negate as u32) << 15)
                | p(p1.pred, 12)
                | ((p2.negate as u32) << 11)
                | p(p2.pred, 8)
        }
        Op::Load {
            area,
            size,
            rd,
            ra,
            offset,
        } => {
            oc(opcode::LOAD)
                | ((area.code() as u32) << 19)
                | ((size.code() as u32) << 17)
                | r(rd, 12)
                | r(ra, 7)
                | ((offset as u32) & 0x7f)
        }
        Op::Store {
            area,
            size,
            ra,
            offset,
            rs,
        } => {
            oc(opcode::STORE)
                | ((area.code() as u32) << 19)
                | ((size.code() as u32) << 17)
                | r(rs, 12)
                | r(ra, 7)
                | ((offset as u32) & 0x7f)
        }
        Op::MainLoad { ra, offset } => {
            oc(opcode::MAIN_LOAD) | r(ra, 17) | ((offset as u32) & 0xfff)
        }
        Op::MainWait { rd } => oc(opcode::MAIN_WAIT) | r(rd, 17),
        Op::MainStore { ra, offset, rs } => {
            oc(opcode::MAIN_STORE) | r(rs, 17) | r(ra, 12) | ((offset as u32) & 0xfff)
        }
        Op::Br { offset } => oc(opcode::BR) | ((offset as u32) & 0x3f_ffff),
        Op::Call { offset } => oc(opcode::CALL) | ((offset as u32) & 0x3f_ffff),
        Op::CallR { rs } => oc(opcode::CALL_R) | r(rs, 17),
        Op::Ret => oc(opcode::RET),
        Op::Sres { words } => oc(opcode::SRES) | (words & 0x3f_ffff),
        Op::Sens { words } => oc(opcode::SENS) | (words & 0x3f_ffff),
        Op::Sfree { words } => oc(opcode::SFREE) | (words & 0x3f_ffff),
        Op::Mts { sd, rs } => oc(opcode::MTS) | ((sd.code() as u32) << 18) | r(rs, 13),
        Op::Mfs { rd, ss } => oc(opcode::MFS) | r(rd, 17) | ((ss.code() as u32) << 13),
    }
}

fn encode_inst(inst: &Inst) -> u32 {
    guard_bits(inst.guard) | op_bits(&inst.op)
}

/// Encodes a bundle into one or two 32-bit words.
///
/// # Panics
///
/// Panics if an immediate or offset is out of range for its field; call
/// [`validate_op`] first when handling untrusted input.
///
/// # Example
///
/// ```
/// use patmos_isa::{encode, Bundle, Inst, Op};
/// let words = encode(&Bundle::single(Inst::always(Op::Ret)));
/// assert_eq!(words.len(), 1);
/// ```
pub fn encode(bundle: &Bundle) -> Vec<u32> {
    for inst in bundle.slots() {
        if let Err(e) = validate_op(&inst.op) {
            panic!("cannot encode `{inst}`: {e}");
        }
    }
    match (bundle.first(), bundle.second()) {
        (first, None) => {
            if let Op::LoadImm32 { imm, .. } = first.op {
                vec![encode_inst(first) | SIZE_BIT, imm]
            } else {
                vec![encode_inst(first)]
            }
        }
        (first, Some(second)) => {
            vec![encode_inst(first) | SIZE_BIT, encode_inst(second)]
        }
    }
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn decode_reg(word: u32, pos: u32) -> Reg {
    Reg::from_index(((word >> pos) & 0x1f) as u8)
}

fn decode_pred(word: u32, pos: u32) -> Pred {
    Pred::from_index(((word >> pos) & 0x7) as u8)
}

fn decode_op(word: u32) -> Result<Op, DecodeError> {
    let invalid = || DecodeError::InvalidEncoding { word };
    let oc = (word >> 22) & 0x1f;
    Ok(match oc {
        opcode::NOP_HALT => {
            if word & 1 == 0 {
                Op::Nop
            } else {
                Op::Halt
            }
        }
        opcode::ALU_R => Op::AluR {
            op: AluOp::from_code((word & 0xf) as u8).ok_or_else(invalid)?,
            rd: decode_reg(word, 17),
            rs1: decode_reg(word, 12),
            rs2: decode_reg(word, 7),
        },
        c if (opcode::ALU_I_BASE..opcode::ALU_I_BASE + 9).contains(&c) => Op::AluI {
            op: AluOp::from_code((c - opcode::ALU_I_BASE) as u8).ok_or_else(invalid)?,
            rd: decode_reg(word, 17),
            rs1: decode_reg(word, 12),
            imm: sign_extend(word & 0xfff, 12) as i16,
        },
        opcode::MUL => Op::Mul {
            rs1: decode_reg(word, 12),
            rs2: decode_reg(word, 7),
        },
        opcode::LI_LOW => Op::LoadImmLow {
            rd: decode_reg(word, 17),
            imm: (word & 0xffff) as u16,
        },
        opcode::LI_HIGH => Op::LoadImmHigh {
            rd: decode_reg(word, 17),
            imm: (word & 0xffff) as u16,
        },
        opcode::LI_LONG => Op::LoadImm32 {
            rd: decode_reg(word, 17),
            imm: 0,
        },
        opcode::CMP => Op::Cmp {
            op: CmpOp::from_code(((word >> 19) & 0x7) as u8).ok_or_else(invalid)?,
            pd: decode_pred(word, 16),
            rs1: decode_reg(word, 11),
            rs2: decode_reg(word, 6),
        },
        opcode::CMP_I => Op::CmpI {
            op: CmpOp::from_code(((word >> 19) & 0x7) as u8).ok_or_else(invalid)?,
            pd: decode_pred(word, 16),
            rs1: decode_reg(word, 11),
            imm: sign_extend(word & 0x7ff, 11) as i16,
        },
        opcode::PRED_SET => Op::PredSet {
            op: PredOp::from_code(((word >> 20) & 0x3) as u8).ok_or_else(invalid)?,
            pd: decode_pred(word, 16),
            p1: PredSrc {
                pred: decode_pred(word, 12),
                negate: (word >> 15) & 1 == 1,
            },
            p2: PredSrc {
                pred: decode_pred(word, 8),
                negate: (word >> 11) & 1 == 1,
            },
        },
        opcode::LOAD => Op::Load {
            area: MemArea::from_code(((word >> 19) & 0x7) as u8).ok_or_else(invalid)?,
            size: AccessSize::from_code(((word >> 17) & 0x3) as u8).ok_or_else(invalid)?,
            rd: decode_reg(word, 12),
            ra: decode_reg(word, 7),
            offset: sign_extend(word & 0x7f, 7) as i16,
        },
        opcode::STORE => Op::Store {
            area: MemArea::from_code(((word >> 19) & 0x7) as u8).ok_or_else(invalid)?,
            size: AccessSize::from_code(((word >> 17) & 0x3) as u8).ok_or_else(invalid)?,
            rs: decode_reg(word, 12),
            ra: decode_reg(word, 7),
            offset: sign_extend(word & 0x7f, 7) as i16,
        },
        opcode::MAIN_LOAD => Op::MainLoad {
            ra: decode_reg(word, 17),
            offset: sign_extend(word & 0xfff, 12) as i16,
        },
        opcode::MAIN_WAIT => Op::MainWait {
            rd: decode_reg(word, 17),
        },
        opcode::MAIN_STORE => Op::MainStore {
            rs: decode_reg(word, 17),
            ra: decode_reg(word, 12),
            offset: sign_extend(word & 0xfff, 12) as i16,
        },
        opcode::BR => Op::Br {
            offset: sign_extend(word & 0x3f_ffff, 22),
        },
        opcode::CALL => Op::Call {
            offset: sign_extend(word & 0x3f_ffff, 22),
        },
        opcode::CALL_R => Op::CallR {
            rs: decode_reg(word, 17),
        },
        opcode::RET => Op::Ret,
        opcode::SRES => Op::Sres {
            words: word & 0x3f_ffff,
        },
        opcode::SENS => Op::Sens {
            words: word & 0x3f_ffff,
        },
        opcode::SFREE => Op::Sfree {
            words: word & 0x3f_ffff,
        },
        opcode::MTS => Op::Mts {
            sd: SpecialReg::from_code(((word >> 18) & 0xf) as u8).ok_or_else(invalid)?,
            rs: decode_reg(word, 13),
        },
        opcode::MFS => Op::Mfs {
            rd: decode_reg(word, 17),
            ss: SpecialReg::from_code(((word >> 13) & 0xf) as u8).ok_or_else(invalid)?,
        },
        _ => return Err(invalid()),
    })
}

fn decode_inst(word: u32) -> Result<Inst, DecodeError> {
    let guard = Guard {
        pred: Pred::from_index(((word >> 28) & 0x7) as u8),
        negate: (word >> 27) & 1 == 1,
    };
    Ok(Inst {
        guard,
        op: decode_op(word)?,
    })
}

/// Decodes one bundle from the start of `words`.
///
/// Returns the bundle and the number of words consumed (1 or 2); the
/// length is taken from the first word's size bit.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] when `words` does not hold the whole
/// bundle, [`DecodeError::InvalidEncoding`] for an unknown opcode or
/// sub-field, and [`DecodeError::IllegalBundle`] when the second slot
/// holds a first-slot-only operation.
///
/// # Example
///
/// ```
/// use patmos_isa::{decode, encode, Bundle, Inst, Op, Reg};
///
/// # fn main() -> Result<(), patmos_isa::DecodeError> {
/// let bundle = Bundle::single(Inst::always(Op::LoadImm32 { rd: Reg::R1, imm: 99 }));
/// let words = encode(&bundle);
/// let (back, consumed) = decode(&words)?;
/// assert_eq!(back, bundle);
/// assert_eq!(consumed, 2);
/// # Ok(())
/// # }
/// ```
pub fn decode(words: &[u32]) -> Result<(Bundle, usize), DecodeError> {
    let &first_word = words.first().ok_or(DecodeError::Truncated)?;
    let first = decode_inst(first_word)?;
    if first_word & SIZE_BIT == 0 {
        if matches!(first.op, Op::LoadImm32 { .. }) {
            // A long immediate must have its size bit set.
            return Err(DecodeError::InvalidEncoding { word: first_word });
        }
        return Ok((Bundle::single(first), 1));
    }
    let &second_word = words.get(1).ok_or(DecodeError::Truncated)?;
    if let Op::LoadImm32 { rd, .. } = first.op {
        let inst = Inst::new(
            first.guard,
            Op::LoadImm32 {
                rd,
                imm: second_word,
            },
        );
        return Ok((Bundle::single(inst), 2));
    }
    let second = decode_inst(second_word)?;
    let bundle = Bundle::try_pair(first, second)
        .map_err(|_| DecodeError::IllegalBundle { word: second_word })?;
    Ok((bundle, 2))
}

/// Decodes a whole image of words into bundles with their word addresses.
///
/// # Errors
///
/// Propagates the first [`DecodeError`] encountered.
pub fn decode_all(words: &[u32]) -> Result<Vec<(u32, Bundle)>, DecodeError> {
    let mut out = Vec::new();
    let mut addr = 0usize;
    while addr < words.len() {
        let (bundle, used) = decode(&words[addr..])?;
        out.push((addr as u32, bundle));
        addr += used;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Bundle, CmpOp, Guard, Inst, Op, PredOp, PredSrc};

    fn round_trip(bundle: Bundle) {
        let words = encode(&bundle);
        let (decoded, used) = decode(&words).expect("decodes");
        assert_eq!(decoded, bundle, "words: {words:08x?}");
        assert_eq!(used, words.len());
    }

    #[test]
    fn round_trip_every_op_shape() {
        let ops = [
            Op::Nop,
            Op::Halt,
            Op::AluR {
                op: AluOp::Nor,
                rd: Reg::R5,
                rs1: Reg::R6,
                rs2: Reg::R7,
            },
            Op::AluI {
                op: AluOp::Sra,
                rd: Reg::R1,
                rs1: Reg::R2,
                imm: -2048,
            },
            Op::AluI {
                op: AluOp::Add,
                rd: Reg::R1,
                rs1: Reg::R2,
                imm: 2047,
            },
            Op::Mul {
                rs1: Reg::R3,
                rs2: Reg::R4,
            },
            Op::LoadImmLow {
                rd: Reg::R9,
                imm: 0xffff,
            },
            Op::LoadImmHigh {
                rd: Reg::R9,
                imm: 0x8000,
            },
            Op::Cmp {
                op: CmpOp::Ule,
                pd: Pred::P7,
                rs1: Reg::R31,
                rs2: Reg::R1,
            },
            Op::CmpI {
                op: CmpOp::Lt,
                pd: Pred::P3,
                rs1: Reg::R2,
                imm: -1024,
            },
            Op::PredSet {
                op: PredOp::Xor,
                pd: Pred::P1,
                p1: PredSrc::negated(Pred::P2),
                p2: PredSrc::plain(Pred::P3),
            },
            Op::Load {
                area: MemArea::Spm,
                size: AccessSize::Half,
                rd: Reg::R8,
                ra: Reg::R9,
                offset: -64,
            },
            Op::Store {
                area: MemArea::Data,
                size: AccessSize::Byte,
                ra: Reg::R10,
                offset: 63,
                rs: Reg::R11,
            },
            Op::MainLoad {
                ra: Reg::R1,
                offset: -2048,
            },
            Op::MainWait { rd: Reg::R2 },
            Op::MainStore {
                ra: Reg::R1,
                offset: 2047,
                rs: Reg::R3,
            },
            Op::Br { offset: -(1 << 21) },
            Op::Call {
                offset: (1 << 21) - 1,
            },
            Op::CallR { rs: Reg::R12 },
            Op::Ret,
            Op::Sres { words: 0x3f_ffff },
            Op::Sens { words: 1 },
            Op::Sfree { words: 0 },
            Op::Mts {
                sd: SpecialReg::Ss,
                rs: Reg::R4,
            },
            Op::Mfs {
                rd: Reg::R5,
                ss: SpecialReg::Sh,
            },
        ];
        for op in ops {
            round_trip(Bundle::single(Inst::always(op)));
            round_trip(Bundle::single(Inst::new(
                Guard {
                    pred: Pred::P5,
                    negate: true,
                },
                op,
            )));
        }
    }

    #[test]
    fn round_trip_long_immediate() {
        for imm in [0, 1, 0xdead_beef, u32::MAX] {
            round_trip(Bundle::single(Inst::always(Op::LoadImm32 {
                rd: Reg::R7,
                imm,
            })));
        }
    }

    #[test]
    fn round_trip_pair() {
        round_trip(Bundle::pair(
            Inst::always(Op::Load {
                area: MemArea::Stack,
                size: AccessSize::Word,
                rd: Reg::R1,
                ra: Reg::R2,
                offset: 3,
            }),
            Inst::when(
                Pred::P2,
                Op::AluR {
                    op: AluOp::Sub,
                    rd: Reg::R4,
                    rs1: Reg::R5,
                    rs2: Reg::R6,
                },
            ),
        ));
    }

    #[test]
    fn truncated_input() {
        assert_eq!(decode(&[]).unwrap_err(), DecodeError::Truncated);
        let words = encode(&Bundle::pair(Inst::always(Op::Nop), Inst::always(Op::Nop)));
        assert_eq!(decode(&words[..1]).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn illegal_second_slot_rejected() {
        // Hand-craft a 64-bit bundle whose second word is a `ret`.
        let first = encode(&Bundle::single(Inst::always(Op::Nop)))[0] | SIZE_BIT;
        let second = encode(&Bundle::single(Inst::always(Op::Ret)))[0];
        match decode(&[first, second]) {
            Err(DecodeError::IllegalBundle { .. }) => {}
            other => panic!("expected IllegalBundle, got {other:?}"),
        }
    }

    #[test]
    fn validate_op_catches_ranges() {
        assert!(validate_op(&Op::Br { offset: 1 << 21 }).is_err());
        assert!(validate_op(&Op::Br {
            offset: (1 << 21) - 1
        })
        .is_ok());
        assert!(validate_op(&Op::Load {
            area: MemArea::Stack,
            size: AccessSize::Word,
            rd: Reg::R1,
            ra: Reg::R2,
            offset: 64,
        })
        .is_err());
    }

    #[test]
    fn decode_all_walks_image() {
        let mut words = Vec::new();
        words.extend(encode(&Bundle::single(Inst::always(Op::Nop))));
        words.extend(encode(&Bundle::single(Inst::always(Op::LoadImm32 {
            rd: Reg::R1,
            imm: 7,
        }))));
        words.extend(encode(&Bundle::single(Inst::always(Op::Halt))));
        let bundles = decode_all(&words).expect("decodes");
        assert_eq!(bundles.len(), 3);
        assert_eq!(bundles[0].0, 0);
        assert_eq!(bundles[1].0, 1);
        assert_eq!(bundles[2].0, 3);
    }
}
