//! Architecturally visible delays of the Patmos pipeline.
//!
//! Patmos never stalls implicitly: "All instruction delays are thus
//! explicitly visible at the ISA-level, and the exposed delays from the
//! pipeline need to be respected in order to guarantee correct and
//! efficient code" (paper, Section 3). These constants are the contract
//! shared by the assembler's legality checks, the compiler's scheduler,
//! the cycle-accurate simulator, and the WCET analysis. The only implicit
//! stalls are cache misses (method cache at call/return, data-cache line
//! fills, stack-cache spill/fill) and the *explicit* wait of a split load.

/// Delay bundles after an unconditional direct branch or call.
///
/// Unconditional direct control transfers are detected in the decode
/// stage, where the offset feeds the PC multiplexer straight from the
/// instruction register (paper, Section 3.2, Figure 1).
pub const BRANCH_DELAY_UNCOND: u32 = 1;

/// Delay bundles after a guarded branch, indirect call, or return.
///
/// Their predicate or target register value becomes available at the end
/// of the execute stage, one stage later than the decode-stage resolution
/// of unconditional branches.
pub const BRANCH_DELAY_COND: u32 = 2;

/// Bundles that must separate a typed load from the first use of its
/// destination register.
///
/// Loads deliver their value in the merged memory/write-back stage; an
/// immediately following bundle's execute stage would read a stale value.
pub const LOAD_USE_GAP: u32 = 1;

/// Bundles that must separate `mul` from `mfs` of `sl`/`sh`.
pub const MUL_GAP: u32 = 1;

/// Bundles that must separate `mts`/`sres`-style stack-pointer setup from
/// a dependent stack-cache access (conservative; used by the scheduler).
pub const STACK_SETUP_GAP: u32 = 1;

/// Cycles a bundle takes to issue when no stall event occurs.
pub const ISSUE_CYCLES: u32 = 1;

/// Whether an instruction with the given properties respects the ISA: the
/// simulator's *strict* mode reports violations of these gaps as program
/// errors rather than silently delivering stale values, which is what the
/// hardware would do.
///
/// # Example
///
/// ```
/// use patmos_isa::timing;
/// // A load followed immediately by a use violates the gap:
/// assert!(!timing::gap_satisfied(timing::LOAD_USE_GAP, 0));
/// // One intervening bundle satisfies it:
/// assert!(timing::gap_satisfied(timing::LOAD_USE_GAP, 1));
/// ```
pub fn gap_satisfied(required: u32, actual_bundles_between: u32) -> bool {
    actual_bundles_between >= required
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_consistent() {
        // Conditional flow must be at least as delayed as unconditional:
        // the predicate resolves a stage later than decode.
        const { assert!(BRANCH_DELAY_COND > BRANCH_DELAY_UNCOND) };
        assert!(gap_satisfied(MUL_GAP, MUL_GAP));
        assert!(!gap_satisfied(MUL_GAP, MUL_GAP - 1));
    }
}
