//! Typed memory areas and access sizes.
//!
//! Patmos distinguishes the data areas *in the instruction set*: every load
//! and store names the cache it goes through (paper, Sections 3.1 and 3.3).
//! This lets the WCET analysis attribute each access to the right cache
//! model and lets the pipeline detect early which cache is addressed.

use std::fmt;

/// The typed memory area named by a load or store instruction.
///
/// Each area is served by its own cache with its own, independently
/// analyzable behaviour (paper, Section 3.3):
///
/// * [`Stack`](MemArea::Stack) — direct-mapped stack cache managed with
///   explicit `sres`/`sens`/`sfree` instructions;
/// * [`Static`](MemArea::Static) — set-associative cache for constants and
///   static data;
/// * [`Data`](MemArea::Data) — highly associative cache for heap data;
/// * [`Spm`](MemArea::Spm) — compiler-managed scratchpad with fixed latency;
/// * [`Main`](MemArea::Main) — uncached main memory, reached only through
///   split loads (`Op::MainLoad` + `Op::MainWait`) and posted stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemArea {
    /// Stack-allocated data, served by the stack cache.
    Stack,
    /// Constants and static data, served by the set-associative cache.
    Static,
    /// Heap-allocated data, served by the highly associative data cache.
    Data,
    /// Scratchpad memory.
    Spm,
    /// Uncached main memory (split accesses only).
    Main,
}

impl MemArea {
    /// All areas in encoding order.
    pub const ALL: [MemArea; 5] = [
        MemArea::Stack,
        MemArea::Static,
        MemArea::Data,
        MemArea::Spm,
        MemArea::Main,
    ];

    /// The 3-bit encoding of this area.
    pub fn code(self) -> u8 {
        match self {
            MemArea::Stack => 0,
            MemArea::Static => 1,
            MemArea::Data => 2,
            MemArea::Spm => 3,
            MemArea::Main => 4,
        }
    }

    /// Decodes an area from its 3-bit code.
    pub fn from_code(code: u8) -> Option<MemArea> {
        MemArea::ALL.get(code as usize).copied()
    }

    /// The assembly mnemonic suffix for this area (`lws`, `lwc`, `lwd`,
    /// `lwl`, `lwm` style).
    pub fn suffix(self) -> char {
        match self {
            MemArea::Stack => 's',
            MemArea::Static => 'c',
            MemArea::Data => 'd',
            MemArea::Spm => 'l',
            MemArea::Main => 'm',
        }
    }
}

impl fmt::Display for MemArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MemArea::Stack => "stack",
            MemArea::Static => "static",
            MemArea::Data => "data",
            MemArea::Spm => "spm",
            MemArea::Main => "main",
        };
        f.write_str(name)
    }
}

/// The width of a memory access.
///
/// Sub-word loads zero-extend; the compiler materialises sign extension
/// with a shift pair where required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessSize {
    /// 8-bit access.
    Byte,
    /// 16-bit access (address must be 2-byte aligned).
    Half,
    /// 32-bit access (address must be 4-byte aligned).
    Word,
}

impl AccessSize {
    /// All sizes in encoding order.
    pub const ALL: [AccessSize; 3] = [AccessSize::Byte, AccessSize::Half, AccessSize::Word];

    /// The 2-bit encoding of this size.
    pub fn code(self) -> u8 {
        match self {
            AccessSize::Byte => 0,
            AccessSize::Half => 1,
            AccessSize::Word => 2,
        }
    }

    /// Decodes a size from its 2-bit code.
    pub fn from_code(code: u8) -> Option<AccessSize> {
        AccessSize::ALL.get(code as usize).copied()
    }

    /// Number of bytes moved by an access of this size.
    pub fn bytes(self) -> u32 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
        }
    }

    /// The mnemonic letter (`b`, `h`, `w`).
    pub fn letter(self) -> char {
        match self {
            AccessSize::Byte => 'b',
            AccessSize::Half => 'h',
            AccessSize::Word => 'w',
        }
    }
}

impl fmt::Display for AccessSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_codes_round_trip() {
        for a in MemArea::ALL {
            assert_eq!(MemArea::from_code(a.code()), Some(a));
        }
        assert_eq!(MemArea::from_code(7), None);
    }

    #[test]
    fn size_codes_round_trip() {
        for s in AccessSize::ALL {
            assert_eq!(AccessSize::from_code(s.code()), Some(s));
        }
        assert_eq!(AccessSize::from_code(3), None);
    }

    #[test]
    fn size_bytes() {
        assert_eq!(AccessSize::Byte.bytes(), 1);
        assert_eq!(AccessSize::Half.bytes(), 2);
        assert_eq!(AccessSize::Word.bytes(), 4);
    }

    #[test]
    fn area_suffixes_are_distinct() {
        let mut suffixes: Vec<char> = MemArea::ALL.iter().map(|a| a.suffix()).collect();
        suffixes.sort_unstable();
        suffixes.dedup();
        assert_eq!(suffixes.len(), MemArea::ALL.len());
    }
}
