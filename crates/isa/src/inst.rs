//! Operations, guarded instructions, and VLIW bundles.

use std::fmt;

use crate::mem::{AccessSize, MemArea};
use crate::reg::{Pred, Reg, SpecialReg};
use crate::LINK_REG;

/// A two-operand ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Xor,
    Or,
    And,
    Nor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
}

impl AluOp {
    /// All ALU operations in encoding order.
    pub const ALL: [AluOp; 9] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::Or,
        AluOp::And,
        AluOp::Nor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sra,
    ];

    /// The 4-bit function code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes an operation from its function code.
    pub fn from_code(code: u8) -> Option<AluOp> {
        AluOp::ALL.get(code as usize).copied()
    }

    /// Applies the operation to two 32-bit values.
    ///
    /// Shifts use only the low 5 bits of the second operand; `add`/`sub`
    /// wrap, as on the hardware.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Xor => a ^ b,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Nor => !(a | b),
            AluOp::Shl => a.wrapping_shl(b & 31),
            AluOp::Shr => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Nor => "nor",
            // `sl`/`sr` rather than `shl`/`shr`: the latter collide with
            // the store-half mnemonics (e.g. store-half-local `shl`).
            AluOp::Shl => "sl",
            AluOp::Shr => "sr",
            AluOp::Sra => "sra",
        }
    }
}

/// A compare operation producing a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Neq,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
}

impl CmpOp {
    /// All compare operations in encoding order.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Ult,
        CmpOp::Ule,
    ];

    /// The 3-bit function code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a compare operation from its function code.
    pub fn from_code(code: u8) -> Option<CmpOp> {
        CmpOp::ALL.get(code as usize).copied()
    }

    /// Evaluates the comparison.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Neq => a != b,
            CmpOp::Lt => (a as i32) < (b as i32),
            CmpOp::Le => (a as i32) <= (b as i32),
            CmpOp::Ult => a < b,
            CmpOp::Ule => a <= b,
        }
    }

    /// The assembly mnemonic (used as `cmp<op>` / `cmpi<op>`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Neq => "neq",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Ult => "ult",
            CmpOp::Ule => "ule",
        }
    }
}

/// A logical combination of two predicate operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum PredOp {
    Or,
    And,
    Xor,
}

impl PredOp {
    /// All predicate operations in encoding order.
    pub const ALL: [PredOp; 3] = [PredOp::Or, PredOp::And, PredOp::Xor];

    /// The 2-bit function code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a predicate operation from its function code.
    pub fn from_code(code: u8) -> Option<PredOp> {
        PredOp::ALL.get(code as usize).copied()
    }

    /// Evaluates the combination.
    #[inline]
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            PredOp::Or => a | b,
            PredOp::And => a & b,
            PredOp::Xor => a ^ b,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            PredOp::Or => "por",
            PredOp::And => "pand",
            PredOp::Xor => "pxor",
        }
    }
}

/// A possibly negated predicate operand, as used by [`Op::PredSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredSrc {
    /// The predicate register read.
    pub pred: Pred,
    /// Whether the read value is inverted.
    pub negate: bool,
}

impl PredSrc {
    /// A non-negated predicate operand.
    pub fn plain(pred: Pred) -> PredSrc {
        PredSrc {
            pred,
            negate: false,
        }
    }

    /// A negated predicate operand.
    pub fn negated(pred: Pred) -> PredSrc {
        PredSrc { pred, negate: true }
    }
}

impl fmt::Display for PredSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "!{}", self.pred)
        } else {
            write!(f, "{}", self.pred)
        }
    }
}

/// The guard of an instruction: a possibly negated predicate register.
///
/// Every Patmos instruction is fully predicated (paper, Section 3.1).
/// The guard [`Guard::ALWAYS`] (non-negated `p0`) makes the instruction
/// unconditional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The guarding predicate register.
    pub pred: Pred,
    /// Whether the guard is the negation of the predicate.
    pub negate: bool,
}

impl Guard {
    /// The unconditional guard: non-negated `p0`.
    pub const ALWAYS: Guard = Guard {
        pred: Pred::P0,
        negate: false,
    };

    /// A guard that is true when `pred` is true.
    pub fn when(pred: Pred) -> Guard {
        Guard {
            pred,
            negate: false,
        }
    }

    /// A guard that is true when `pred` is false.
    pub fn unless(pred: Pred) -> Guard {
        Guard { pred, negate: true }
    }

    /// Whether this guard is statically always true.
    #[inline]
    pub fn is_always(self) -> bool {
        self.pred.is_always_true() && !self.negate
    }

    /// Evaluates the guard against a predicate-file snapshot (`preds[i]`
    /// is the value of `p<i>`; `preds[0]` must be `true`).
    #[inline]
    pub fn eval(self, preds: &[bool; crate::NUM_PREDS]) -> bool {
        preds[self.pred.index() as usize] ^ self.negate
    }
}

impl Default for Guard {
    fn default() -> Self {
        Guard::ALWAYS
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "(!{})", self.pred)
        } else {
            write!(f, "({})", self.pred)
        }
    }
}

/// A Patmos operation (the part of an instruction below the guard).
///
/// Offsets of typed loads and stores are in units of the access size;
/// branch and call offsets are in words, relative to the address of the
/// first word of the bundle containing the control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// No operation.
    Nop,
    /// Register-register ALU operation: `rd = rs1 <op> rs2`.
    AluR {
        /// The function.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = rs1 <op> imm` with a
    /// sign-extended 12-bit immediate.
    AluI {
        /// The function.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended 12-bit immediate (must fit in `-2048..=2047`).
        imm: i16,
    },
    /// Multiply `rs1 * rs2`, writing the 64-bit product to `sl`/`sh` with a
    /// visible one-bundle gap before `mfs` may read it.
    Mul {
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Load a 16-bit immediate into the lower half (sign-extending) of `rd`.
    LoadImmLow {
        /// Destination register.
        rd: Reg,
        /// The immediate.
        imm: u16,
    },
    /// Load a 16-bit immediate into the upper half of `rd`, keeping the
    /// lower half.
    LoadImmHigh {
        /// Destination register.
        rd: Reg,
        /// The immediate.
        imm: u16,
    },
    /// Load a full 32-bit immediate, using the second issue slot for the
    /// constant (paper, Section 3.1). Occupies the whole bundle.
    LoadImm32 {
        /// Destination register.
        rd: Reg,
        /// The immediate.
        imm: u32,
    },
    /// Compare two registers into a predicate: `pd = rs1 <op> rs2`.
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Destination predicate.
        pd: Pred,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Compare a register against a sign-extended 11-bit immediate.
    CmpI {
        /// The comparison.
        op: CmpOp,
        /// Destination predicate.
        pd: Pred,
        /// Source register.
        rs1: Reg,
        /// Sign-extended 11-bit immediate (must fit in `-1024..=1023`).
        imm: i16,
    },
    /// Combine two predicates: `pd = p1 <op> p2`.
    PredSet {
        /// The combination.
        op: PredOp,
        /// Destination predicate.
        pd: Pred,
        /// First operand.
        p1: PredSrc,
        /// Second operand.
        p2: PredSrc,
    },
    /// Typed load: `rd = area[ra + offset]`, `offset` scaled by the access
    /// size, 7-bit signed. Sub-word loads zero-extend.
    Load {
        /// The memory area (selects the cache).
        area: MemArea,
        /// Access width.
        size: AccessSize,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        ra: Reg,
        /// Signed offset in units of the access size (`-64..=63`).
        offset: i16,
    },
    /// Typed store: `area[ra + offset] = rs`.
    Store {
        /// The memory area (selects the cache).
        area: MemArea,
        /// Access width.
        size: AccessSize,
        /// Base address register.
        ra: Reg,
        /// Signed offset in units of the access size (`-64..=63`).
        offset: i16,
        /// Source register.
        rs: Reg,
    },
    /// Start a split main-memory load of the word at `ra + offset*4`
    /// (paper, Section 3.3). The result lands in `sm`; [`Op::MainWait`]
    /// retrieves it, stalling only if it has not yet arrived.
    MainLoad {
        /// Base address register.
        ra: Reg,
        /// Signed word offset (`-2048..=2047`).
        offset: i16,
    },
    /// Explicitly wait for the outstanding split load and move its result
    /// to `rd`. This is the only data instruction that may stall.
    MainWait {
        /// Destination register.
        rd: Reg,
    },
    /// Posted store of `rs` to main memory at `ra + offset*4`. Retires
    /// through a one-entry write buffer; a subsequent main-memory access
    /// waits for it to drain.
    MainStore {
        /// Base address register.
        ra: Reg,
        /// Signed word offset (`-2048..=2047`).
        offset: i16,
        /// Source register.
        rs: Reg,
    },
    /// Relative branch within the current function, 22-bit word offset.
    Br {
        /// Signed word offset relative to this bundle's address.
        offset: i32,
    },
    /// Direct call: branch to a function start and link (return address to
    /// `r31`). Checks the method cache.
    Call {
        /// Signed word offset relative to this bundle's address.
        offset: i32,
    },
    /// Register-indirect call to a 32-bit address, linking to `r31`
    /// (paper, Section 3.1). Checks the method cache.
    CallR {
        /// Register holding the target word address.
        rs: Reg,
    },
    /// Return to the address in `r31`. Checks the method cache.
    Ret,
    /// Reserve `words` words on the stack cache, spilling to main memory
    /// if the cache overflows.
    Sres {
        /// Number of words to reserve.
        words: u32,
    },
    /// Ensure `words` words of the current frame are in the stack cache,
    /// filling from main memory if needed (used after calls).
    Sens {
        /// Number of words that must be resident.
        words: u32,
    },
    /// Free `words` words from the stack cache (no memory traffic).
    Sfree {
        /// Number of words to free.
        words: u32,
    },
    /// Move a register to a special register.
    Mts {
        /// Destination special register.
        sd: SpecialReg,
        /// Source register.
        rs: Reg,
    },
    /// Move a special register to a register.
    Mfs {
        /// Destination register.
        rd: Reg,
        /// Source special register.
        ss: SpecialReg,
    },
    /// Stop the simulated processor (simulation artifact; a real Patmos
    /// would idle).
    Halt,
}

/// The control-flow effect of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// Falls through.
    None,
    /// Intra-function branch by a word offset.
    Branch(i32),
    /// Direct call by a word offset.
    CallDirect(i32),
    /// Indirect call through a register.
    CallIndirect(Reg),
    /// Return through the link register.
    Return,
    /// Simulation halt.
    Halt,
}

impl Op {
    /// The control-flow effect of this operation.
    #[inline]
    pub fn flow_kind(&self) -> FlowKind {
        match *self {
            Op::Br { offset } => FlowKind::Branch(offset),
            Op::Call { offset } => FlowKind::CallDirect(offset),
            Op::CallR { rs } => FlowKind::CallIndirect(rs),
            Op::Ret => FlowKind::Return,
            Op::Halt => FlowKind::Halt,
            _ => FlowKind::None,
        }
    }

    /// Whether this operation transfers control.
    #[inline]
    pub fn is_flow(&self) -> bool {
        !matches!(self.flow_kind(), FlowKind::None)
    }

    /// The general-purpose register written, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Op::AluR { rd, .. }
            | Op::AluI { rd, .. }
            | Op::LoadImmLow { rd, .. }
            | Op::LoadImmHigh { rd, .. }
            | Op::LoadImm32 { rd, .. }
            | Op::Load { rd, .. }
            | Op::MainWait { rd }
            | Op::Mfs { rd, .. } => (!rd.is_zero()).then_some(rd),
            Op::Call { .. } | Op::CallR { .. } => Some(LINK_REG),
            _ => None,
        }
    }

    /// The general-purpose registers read (at most two, `None`-padded).
    #[inline]
    pub fn uses(&self) -> [Option<Reg>; 2] {
        match *self {
            Op::AluR { rs1, rs2, .. } | Op::Mul { rs1, rs2 } | Op::Cmp { rs1, rs2, .. } => {
                [Some(rs1), Some(rs2)]
            }
            Op::AluI { rs1, .. } | Op::CmpI { rs1, .. } => [Some(rs1), None],
            Op::LoadImmHigh { rd, .. } => [Some(rd), None],
            Op::Load { ra, .. } | Op::MainLoad { ra, .. } => [Some(ra), None],
            Op::Store { ra, rs, .. } | Op::MainStore { ra, rs, .. } => [Some(ra), Some(rs)],
            Op::CallR { rs } => [Some(rs), None],
            Op::Ret => [Some(LINK_REG), None],
            Op::Mts { rs, .. } => [Some(rs), None],
            _ => [None, None],
        }
    }

    /// The predicate register written, if any.
    pub fn pred_def(&self) -> Option<Pred> {
        match *self {
            Op::Cmp { pd, .. } | Op::CmpI { pd, .. } | Op::PredSet { pd, .. } => Some(pd),
            _ => None,
        }
    }

    /// The predicate registers read by the operation body (the guard is
    /// accounted for separately on [`Inst`]).
    pub fn pred_uses(&self) -> [Option<Pred>; 2] {
        match *self {
            Op::PredSet { p1, p2, .. } => [Some(p1.pred), Some(p2.pred)],
            _ => [None, None],
        }
    }

    /// Whether this operation writes the `sl`/`sh` special registers.
    pub fn writes_mul_result(&self) -> bool {
        matches!(self, Op::Mul { .. })
    }

    /// Whether this operation is a memory access (typed or main).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Op::Load { .. }
                | Op::Store { .. }
                | Op::MainLoad { .. }
                | Op::MainWait { .. }
                | Op::MainStore { .. }
        )
    }

    /// Whether this operation manipulates the stack cache.
    pub fn is_stack_control(&self) -> bool {
        matches!(self, Op::Sres { .. } | Op::Sens { .. } | Op::Sfree { .. })
    }

    /// Whether this operation may be placed in the second issue slot.
    ///
    /// Per the paper (Section 3.1), branches and memory accesses are
    /// restricted to the first pipeline; this implementation also keeps
    /// the multiplier, special-register moves, stack control and `halt`
    /// in slot one. [`Op::LoadImm32`] occupies the whole bundle.
    pub fn allowed_in_second_slot(&self) -> bool {
        matches!(
            self,
            Op::Nop
                | Op::AluR { .. }
                | Op::AluI { .. }
                | Op::LoadImmLow { .. }
                | Op::LoadImmHigh { .. }
                | Op::Cmp { .. }
                | Op::CmpI { .. }
                | Op::PredSet { .. }
        )
    }
}

/// A guarded instruction: a [`Guard`] plus an [`Op`].
///
/// # Example
///
/// ```
/// use patmos_isa::{AluOp, Inst, Op, Pred, Reg};
///
/// let unconditional = Inst::always(Op::Nop);
/// assert_eq!(unconditional.to_string(), "nop");
///
/// let guarded = Inst::when(
///     Pred::P1,
///     Op::AluI { op: AluOp::Add, rd: Reg::R1, rs1: Reg::R1, imm: 1 },
/// );
/// assert_eq!(guarded.to_string(), "(p1) addi r1 = r1, 1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The guard predicate.
    pub guard: Guard,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// An instruction with an explicit guard.
    pub fn new(guard: Guard, op: Op) -> Inst {
        Inst { guard, op }
    }

    /// An unconditional instruction (guarded by `p0`).
    pub fn always(op: Op) -> Inst {
        Inst {
            guard: Guard::ALWAYS,
            op,
        }
    }

    /// An instruction executed when `pred` is true.
    pub fn when(pred: Pred, op: Op) -> Inst {
        Inst {
            guard: Guard::when(pred),
            op,
        }
    }

    /// An instruction executed when `pred` is false.
    pub fn unless(pred: Pred, op: Op) -> Inst {
        Inst {
            guard: Guard::unless(pred),
            op,
        }
    }

    /// A `nop`.
    pub fn nop() -> Inst {
        Inst::always(Op::Nop)
    }

    /// The number of architecturally exposed delay slots that follow this
    /// instruction if it transfers control.
    ///
    /// Unconditional direct branches and calls are detected in the decode
    /// stage (paper, Section 3.2: the branch offset feeds the PC
    /// multiplexer from `IR`), costing one delay bundle. Guarded branches,
    /// indirect calls and returns resolve in the execute stage, costing
    /// two. Non-flow instructions report zero.
    #[inline]
    pub fn delay_slots(&self) -> u32 {
        match self.op.flow_kind() {
            FlowKind::Branch(_) | FlowKind::CallDirect(_) => {
                if self.guard.is_always() {
                    crate::timing::BRANCH_DELAY_UNCOND
                } else {
                    crate::timing::BRANCH_DELAY_COND
                }
            }
            FlowKind::CallIndirect(_) | FlowKind::Return => crate::timing::BRANCH_DELAY_COND,
            FlowKind::Halt | FlowKind::None => 0,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.guard.is_always() {
            write!(f, "{} ", self.guard)?;
        }
        match self.op {
            Op::Nop => write!(f, "nop"),
            Op::AluR { op, rd, rs1, rs2 } => {
                write!(f, "{} {} = {}, {}", op.mnemonic(), rd, rs1, rs2)
            }
            Op::AluI { op, rd, rs1, imm } => {
                write!(f, "{}i {} = {}, {}", op.mnemonic(), rd, rs1, imm)
            }
            Op::Mul { rs1, rs2 } => write!(f, "mul {}, {}", rs1, rs2),
            Op::LoadImmLow { rd, imm } => write!(f, "li {} = {}", rd, imm as i16),
            Op::LoadImmHigh { rd, imm } => write!(f, "liu {} = {}", rd, imm),
            Op::LoadImm32 { rd, imm } => write!(f, "lil {} = {}", rd, imm),
            Op::Cmp { op, pd, rs1, rs2 } => {
                write!(f, "cmp{} {} = {}, {}", op.mnemonic(), pd, rs1, rs2)
            }
            Op::CmpI { op, pd, rs1, imm } => {
                write!(f, "cmpi{} {} = {}, {}", op.mnemonic(), pd, rs1, imm)
            }
            Op::PredSet { op, pd, p1, p2 } => {
                write!(f, "{} {} = {}, {}", op.mnemonic(), pd, p1, p2)
            }
            Op::Load {
                area,
                size,
                rd,
                ra,
                offset,
            } => {
                write!(
                    f,
                    "l{}{} {} = [{} + {}]",
                    size,
                    area.suffix(),
                    rd,
                    ra,
                    offset
                )
            }
            Op::Store {
                area,
                size,
                ra,
                offset,
                rs,
            } => {
                write!(
                    f,
                    "s{}{} [{} + {}] = {}",
                    size,
                    area.suffix(),
                    ra,
                    offset,
                    rs
                )
            }
            Op::MainLoad { ra, offset } => write!(f, "ldm [{} + {}]", ra, offset),
            Op::MainWait { rd } => write!(f, "wres {}", rd),
            Op::MainStore { ra, offset, rs } => write!(f, "stm [{} + {}] = {}", ra, offset, rs),
            Op::Br { offset } => write!(f, "br {}", offset),
            Op::Call { offset } => write!(f, "call {}", offset),
            Op::CallR { rs } => write!(f, "callr {}", rs),
            Op::Ret => write!(f, "ret"),
            Op::Sres { words } => write!(f, "sres {}", words),
            Op::Sens { words } => write!(f, "sens {}", words),
            Op::Sfree { words } => write!(f, "sfree {}", words),
            Op::Mts { sd, rs } => write!(f, "mts {} = {}", sd, rs),
            Op::Mfs { rd, ss } => write!(f, "mfs {} = {}", rd, ss),
            Op::Halt => write!(f, "halt"),
        }
    }
}

/// The reason a bundle is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BundleError {
    /// The second slot holds an operation restricted to the first pipeline.
    IllegalSecondSlot,
    /// A `lil` (32-bit immediate load) must occupy a bundle alone.
    LongImmediateNotAlone,
    /// Both slots write the same register in the same cycle.
    ConflictingWrites,
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::IllegalSecondSlot => {
                f.write_str("operation is not allowed in the second issue slot")
            }
            BundleError::LongImmediateNotAlone => {
                f.write_str("32-bit immediate load must be the only operation in its bundle")
            }
            BundleError::ConflictingWrites => f.write_str("both slots write the same register"),
        }
    }
}

impl std::error::Error for BundleError {}

/// A VLIW issue bundle: one or two guarded instructions issued together.
///
/// The first word of a bundle carries its length bit (paper, Section 3.1).
/// A bundle with a second slot, or whose single instruction is a
/// [`Op::LoadImm32`], occupies two words.
///
/// # Example
///
/// ```
/// use patmos_isa::{Bundle, Inst, Op};
/// let b = Bundle::single(Inst::always(Op::Halt));
/// assert_eq!(b.width_words(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bundle {
    first: Inst,
    second: Option<Inst>,
}

impl Bundle {
    /// A single-slot bundle.
    pub fn single(first: Inst) -> Bundle {
        Bundle {
            first,
            second: None,
        }
    }

    /// A two-slot bundle.
    ///
    /// # Panics
    ///
    /// Panics if the pair violates the slot rules; use [`Bundle::try_pair`]
    /// for a fallible constructor.
    pub fn pair(first: Inst, second: Inst) -> Bundle {
        Bundle::try_pair(first, second).expect("illegal bundle")
    }

    /// A two-slot bundle, checking the slot rules.
    ///
    /// # Errors
    ///
    /// Returns a [`BundleError`] if the second operation is not allowed in
    /// slot two, either operation is a long immediate load, or both slots
    /// write the same register.
    pub fn try_pair(first: Inst, second: Inst) -> Result<Bundle, BundleError> {
        if matches!(first.op, Op::LoadImm32 { .. }) || matches!(second.op, Op::LoadImm32 { .. }) {
            return Err(BundleError::LongImmediateNotAlone);
        }
        if !second.op.allowed_in_second_slot() {
            return Err(BundleError::IllegalSecondSlot);
        }
        if let (Some(a), Some(b)) = (first.op.def(), second.op.def()) {
            if a == b {
                return Err(BundleError::ConflictingWrites);
            }
        }
        if let (Some(a), Some(b)) = (first.op.pred_def(), second.op.pred_def()) {
            if a == b {
                return Err(BundleError::ConflictingWrites);
            }
        }
        Ok(Bundle {
            first,
            second: Some(second),
        })
    }

    /// The instruction in the first issue slot.
    pub fn first(&self) -> &Inst {
        &self.first
    }

    /// The instruction in the second issue slot, if present.
    #[inline]
    pub fn second(&self) -> Option<&Inst> {
        self.second.as_ref()
    }

    /// Iterates over the occupied slots.
    #[inline]
    pub fn slots(&self) -> impl Iterator<Item = &Inst> {
        std::iter::once(&self.first).chain(self.second.as_ref())
    }

    /// The number of 32-bit words this bundle occupies in memory (1 or 2).
    #[inline]
    pub fn width_words(&self) -> u32 {
        if self.second.is_some() || matches!(self.first.op, Op::LoadImm32 { .. }) {
            2
        } else {
            1
        }
    }

    /// The control-flow instruction of this bundle, if any (only slot one
    /// may hold one).
    #[inline]
    pub fn flow_inst(&self) -> Option<&Inst> {
        self.first.op.is_flow().then_some(&self.first)
    }

    /// The delay slots exposed after this bundle (zero if it does not
    /// transfer control).
    #[inline]
    pub fn delay_slots(&self) -> u32 {
        self.flow_inst().map_or(0, Inst::delay_slots)
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.second {
            None => write!(f, "{}", self.first),
            Some(second) => write!(f, "{{ {} ; {} }}", self.first, second),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        Inst::always(Op::AluR {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Shr.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Nor.apply(0, 0), u32::MAX);
        assert_eq!(AluOp::Shl.apply(1, 33), 2, "shift amount uses low 5 bits");
    }

    #[test]
    fn cmp_semantics() {
        assert!(CmpOp::Lt.apply(u32::MAX, 0), "-1 < 0 signed");
        assert!(!CmpOp::Ult.apply(u32::MAX, 0));
        assert!(CmpOp::Le.apply(5, 5));
        assert!(CmpOp::Neq.apply(1, 2));
    }

    #[test]
    fn guard_eval() {
        let mut preds = [false; crate::NUM_PREDS];
        preds[0] = true;
        preds[2] = true;
        assert!(Guard::ALWAYS.eval(&preds));
        assert!(Guard::when(Pred::P2).eval(&preds));
        assert!(!Guard::when(Pred::P3).eval(&preds));
        assert!(Guard::unless(Pred::P3).eval(&preds));
    }

    #[test]
    fn defs_and_uses() {
        let st = Op::Store {
            area: MemArea::Data,
            size: AccessSize::Word,
            ra: Reg::R2,
            offset: 0,
            rs: Reg::R3,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), [Some(Reg::R2), Some(Reg::R3)]);

        let call = Op::Call { offset: 4 };
        assert_eq!(call.def(), Some(LINK_REG));

        // Writes to r0 are discarded and must not count as definitions.
        let to_zero = Op::AluI {
            op: AluOp::Add,
            rd: Reg::R0,
            rs1: Reg::R1,
            imm: 1,
        };
        assert_eq!(to_zero.def(), None);
    }

    #[test]
    fn bundle_slot_rules() {
        let ld = Inst::always(Op::Load {
            area: MemArea::Stack,
            size: AccessSize::Word,
            rd: Reg::R1,
            ra: Reg::R2,
            offset: 0,
        });
        let a = add(Reg::R3, Reg::R4, Reg::R5);
        assert!(
            Bundle::try_pair(ld, a).is_ok(),
            "load in slot 1, ALU in slot 2"
        );
        assert_eq!(
            Bundle::try_pair(a, ld).unwrap_err(),
            BundleError::IllegalSecondSlot
        );
    }

    #[test]
    fn bundle_conflicting_writes() {
        let a = add(Reg::R3, Reg::R4, Reg::R5);
        let b = add(Reg::R3, Reg::R6, Reg::R7);
        assert_eq!(
            Bundle::try_pair(a, b).unwrap_err(),
            BundleError::ConflictingWrites
        );
    }

    #[test]
    fn long_immediate_occupies_bundle() {
        let lil = Inst::always(Op::LoadImm32 {
            rd: Reg::R1,
            imm: 0xdead_beef,
        });
        assert_eq!(Bundle::single(lil).width_words(), 2);
        let a = add(Reg::R3, Reg::R4, Reg::R5);
        assert_eq!(
            Bundle::try_pair(lil, a).unwrap_err(),
            BundleError::LongImmediateNotAlone
        );
    }

    #[test]
    fn delay_slots_by_guard() {
        let uncond = Inst::always(Op::Br { offset: 8 });
        let cond = Inst::when(Pred::P1, Op::Br { offset: 8 });
        assert_eq!(uncond.delay_slots(), crate::timing::BRANCH_DELAY_UNCOND);
        assert_eq!(cond.delay_slots(), crate::timing::BRANCH_DELAY_COND);
        assert_eq!(
            Inst::always(Op::Ret).delay_slots(),
            crate::timing::BRANCH_DELAY_COND
        );
        assert_eq!(Inst::always(Op::Halt).delay_slots(), 0);
    }

    #[test]
    fn display_round_readable() {
        let b = Bundle::pair(
            add(Reg::R1, Reg::R2, Reg::R3),
            Inst::when(
                Pred::P1,
                Op::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P2,
                    rs1: Reg::R1,
                    imm: 10,
                },
            ),
        );
        assert_eq!(
            b.to_string(),
            "{ add r1 = r2, r3 ; (p1) cmpilt p2 = r1, 10 }"
        );
    }
}
