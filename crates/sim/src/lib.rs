//! Cycle-accurate simulator of the Patmos processor.
//!
//! This is the executable model of the paper's architecture (Section 3):
//! a statically scheduled, dual-issue RISC pipeline that *never stalls
//! implicitly*. Every delay is either visible in the ISA (branch delay
//! slots, load-use and multiply gaps — see [`patmos_isa::timing`]) or is
//! one of the architecturally defined memory events:
//!
//! * method-cache fill at a call or return,
//! * data/static-cache line fill on a read miss,
//! * stack-cache spill/fill at `sres`/`sens`,
//! * the *explicit* wait of a split main-memory load (`wres`),
//! * write-buffer drain before the next main-memory access.
//!
//! The simulator counts cycles exactly under this model and attributes
//! every stall cycle to its cause ([`StallBreakdown`]), which is what the
//! paper's evaluation story (and our WCET analysis in `patmos-wcet`)
//! builds on. The same accounting streams out as structured
//! [`patmos_trace::TraceEvent`]s through [`Simulator::run_traced`]; an
//! untraced run uses the monomorphized [`patmos_trace::NullSink`] and
//! pays nothing.
//!
//! In *strict* mode (the default) the simulator reports a program that
//! violates a visible delay (e.g. uses a loaded value one bundle too
//! early) as an error instead of silently returning the stale value the
//! hardware would deliver — turning the ISA contract into an executable
//! check for the compiler.
//!
//! Untraced runs execute on a host-side fast engine — predecoded bundles
//! whose lifetime is keyed to the method cache's own fills and
//! evictions, plus a basic-block fast path for stall-free bundle runs —
//! that is bit-identical in guest cycles, [`Stats`], and results to the
//! reference interpreter ([`SimConfig::fast_path`] `= false` forces the
//! latter; tracing always uses it). [`Simulator::host_stats`] reports
//! how much work each engine tier retired ([`HostStats`]).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = patmos_asm::assemble(
//!     "        .func main\n        li r1 = 6\n        li r2 = 7\n        mul r1, r2\n        nop\n        mfs r3 = sl\n        halt\n",
//! )?;
//! let mut sim = patmos_sim::Simulator::new(&image, patmos_sim::SimConfig::default());
//! let result = sim.run()?;
//! assert_eq!(sim.reg(patmos_isa::Reg::R3), 42);
//! assert!(result.stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

mod cmp;
mod config;
mod error;
pub mod faults;
mod machine;
mod stats;

pub use cmp::{CmpResult, CmpSystem};
pub use config::{CacheParams, SimConfig};
pub use error::SimError;
pub use faults::{
    ControlFlowMap, DetectorKind, FaultOutcome, FaultPlan, FaultRng, FaultSpace, FaultTarget,
    FaultTrigger, Injection, LoopCap,
};
pub use machine::{HostStats, RunResult, Simulator};
pub use stats::{StallBreakdown, Stats};
