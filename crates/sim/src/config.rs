//! Simulator configuration.

use patmos_mem::{MemConfig, MethodCacheConfig, ReplacementPolicy, TdmaArbiter};

use crate::faults::FaultPlan;

/// Geometry of a set-associative cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in words (power of two).
    pub line_words: u32,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheParams {
    /// Convenience constructor.
    pub fn new(sets: u32, ways: u32, line_words: u32, policy: ReplacementPolicy) -> CacheParams {
        CacheParams {
            sets,
            ways,
            line_words,
            policy,
        }
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> u32 {
        self.sets * self.ways * self.line_words
    }
}

/// Full configuration of one Patmos core.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Issue both slots (`true`, the paper's design) or force
    /// single-issue (the E2 ablation baseline).
    pub dual_issue: bool,
    /// Report visible-delay violations as errors instead of delivering
    /// stale values.
    pub strict: bool,
    /// Method-cache geometry.
    pub method_cache: MethodCacheConfig,
    /// Stack-cache capacity in words.
    pub stack_cache_words: u32,
    /// Heap data cache (the paper's "highly associative" D$).
    pub data_cache: CacheParams,
    /// Static-data/constant cache (set-associative C$).
    pub static_cache: CacheParams,
    /// Scratchpad size in bytes (power of two).
    pub spm_bytes: usize,
    /// Main-memory timing.
    pub mem: MemConfig,
    /// TDMA arbitration for the CMP configuration: `(arbiter, core id)`.
    /// `None` for a single core with a dedicated memory port.
    pub tdma: Option<(TdmaArbiter, u32)>,
    /// Abort after this many cycles (guards against runaway programs).
    pub max_cycles: u64,
    /// Use the predecoded-bundle/fast-path execution engine for untraced
    /// runs (guest-cycle identical; purely a host-speed switch). `false`
    /// forces the reference per-cycle interpreter everywhere — the
    /// baseline the host-throughput experiments compare against. Traced
    /// runs always take the reference path regardless of this flag.
    pub fast_path: bool,
    /// An armed fault-injection plan (`Some`, even empty, forces the
    /// reference interpreter so every bundle passes the injection
    /// hooks). `None` — the default — leaves the hooks dormant and the
    /// engine choice untouched.
    pub faults: Option<FaultPlan>,
}

impl Default for SimConfig {
    /// The paper-shaped default: dual issue, strict checks, 4 KiB method
    /// cache (16 × 64 words, FIFO), 256-word stack cache, 32-way fully
    /// associative 1 KiB heap cache (LRU), 2-way 2 KiB static cache
    /// (LRU), 4 KiB scratchpad.
    fn default() -> SimConfig {
        SimConfig {
            dual_issue: true,
            strict: true,
            method_cache: MethodCacheConfig::default(),
            stack_cache_words: 256,
            data_cache: CacheParams::new(1, 32, 8, ReplacementPolicy::Lru),
            static_cache: CacheParams::new(32, 2, 8, ReplacementPolicy::Lru),
            spm_bytes: 4096,
            mem: MemConfig::default(),
            tdma: None,
            max_cycles: 200_000_000,
            fast_path: true,
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_dual_issue_and_strict() {
        let cfg = SimConfig::default();
        assert!(cfg.dual_issue);
        assert!(cfg.strict);
        assert!(cfg.tdma.is_none());
        assert!(cfg.fast_path);
        assert!(cfg.faults.is_none());
    }

    #[test]
    fn cache_params_capacity() {
        let p = CacheParams::new(32, 2, 8, ReplacementPolicy::Lru);
        assert_eq!(p.capacity_words(), 512);
    }
}
