//! The timed interpreter: one Patmos core, cycle-exact under the
//! visible-delay model.

use std::sync::Arc;

use patmos_asm::{FuncInfo, ObjectImage};
use patmos_isa::{
    timing, AccessSize, Bundle, FlowKind, Inst, MemArea, Op, Pred, Reg, SpecialReg, LINK_REG,
    NUM_PREDS, NUM_REGS,
};
use patmos_mem::{
    MainMemory, MethodCache, Scratchpad, SetAssocCache, StackCache, SHADOW_STACK_TOP, STACK_TOP,
};
use patmos_trace::{CacheKind, FaultKind, NullSink, StallCause, TraceEvent, TraceSink};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::faults::{
    CacheSel, ControlFlowMap, FaultState, FaultTarget, FaultTrigger, FlowCheckState, SpecialTarget,
};
use crate::stats::Stats;

/// Byte address where the loader places the code image (method-cache
/// fills read from here).
pub const CODE_BASE: u32 = 0;

#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    ready_at: u64,
    value: u32,
}

#[derive(Debug, Clone, Copy)]
enum FlowTarget {
    Jump(u32),
    Call(u32),
    Ret(u32),
}

#[derive(Debug, Clone, Copy)]
struct PendingFlow {
    target: FlowTarget,
    slots_left: u32,
}

/// The Stats counters a fast-class bundle can touch, accumulated as
/// deltas inside a burst and flushed to [`Stats`] in one step at exit.
#[derive(Debug, Clone, Copy, Default)]
struct FastDeltas {
    bundles: u64,
    issue_cycles: u64,
    nops: u64,
    insts_executed: u64,
    insts_annulled: u64,
    second_slots_used: u64,
    nop_bundles: u64,
    taken_branches: u64,
    untaken_branches: u64,
    stack_ops: u64,
}

/// The mutable scalars of a fast burst, carried between the burst
/// driver (which owns the flush) and the hot loop (which keeps them in
/// locals).
struct BurstState {
    now: u64,
    bundle_index: u64,
    pc: u32,
    pend: Option<PendingFlow>,
    d: FastDeltas,
}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Execution counters.
    pub stats: Stats,
    /// The word address of the `halt` bundle.
    pub halt_pc: u32,
}

/// Host-side execution counters: which engine tier retired each bundle.
///
/// These are *not* part of [`Stats`] — they describe how fast the host
/// simulated, never what the guest did, and must stay invisible to the
/// bit-identity contract between the fast and reference engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Bundles retired inside the basic-block fast loop.
    pub fast_bundles: u64,
    /// Guest cycles that elapsed inside the basic-block fast loop.
    pub fast_cycles: u64,
    /// Bundles retired by the general predecoded step (outside the fast
    /// loop: memory operations, calls, returns, halt).
    pub pre_bundles: u64,
    /// Guest cycles that elapsed in the general predecoded step.
    pub pre_cycles: u64,
}

impl HostStats {
    /// Fraction of all guest cycles retired via the basic-block fast
    /// path (`0.0` when nothing ran).
    pub fn fast_coverage(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.fast_cycles as f64 / total_cycles as f64
        }
    }

    /// Fraction of all guest cycles retired from predecoded bundles
    /// (fast loop plus general predecoded step).
    pub fn predecoded_coverage(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            (self.fast_cycles + self.pre_cycles) as f64 / total_cycles as f64
        }
    }
}

/// One instruction slot with its decode-time-constant facts precomputed:
/// the registers it reads, whether it is a `nop`, and whether it reads
/// `sl`/`sh` (the multiply-gap check). Recomputing these per retired
/// bundle is what the predecode tier removes from the hot loop.
#[derive(Debug, Clone, Copy)]
struct PreSlot {
    inst: Inst,
    uses: [Option<Reg>; 2],
    is_nop: bool,
    mfs_mul: bool,
}

impl PreSlot {
    fn new(inst: Inst) -> PreSlot {
        PreSlot {
            inst,
            uses: inst.op.uses(),
            is_nop: matches!(inst.op, Op::Nop),
            mfs_mul: matches!(
                inst.op,
                Op::Mfs {
                    ss: SpecialReg::Sl | SpecialReg::Sh,
                    ..
                }
            ),
        }
    }
}

/// A predecoded bundle: both slots as [`PreSlot`]s plus the bundle-level
/// facts (width, all-nop filler, fast-path eligibility).
#[derive(Debug, Clone, Copy)]
struct PreBundle {
    first: PreSlot,
    second: Option<PreSlot>,
    width: u32,
    all_nop: bool,
    /// Whether every slot is in the fast class: operations that never
    /// touch a cache, the write buffer, the split-load port, or the
    /// method cache — so retiring them can never stall or trace.
    fast: bool,
}

impl PreBundle {
    fn new(bundle: Bundle) -> PreBundle {
        let mut slots = bundle.slots();
        let first = PreSlot::new(*slots.next().expect("a bundle has a first slot"));
        let second = slots.next().map(|i| PreSlot::new(*i));
        PreBundle {
            width: bundle.width_words(),
            all_nop: first.is_nop && second.as_ref().is_none_or(|s| s.is_nop),
            fast: op_is_fast(&first.inst.op)
                && second.as_ref().is_none_or(|s| op_is_fast(&s.inst.op)),
            first,
            second,
        }
    }
}

/// The fast class: operations that can never stall and never trace —
/// register-file ops, plain branches, and stack-cache-window or
/// scratchpad accesses (both are on-chip single-cycle memories with no
/// trace events). Everything that can reach the data/static caches, the
/// write buffer, the split-load port, or the method cache (call/return)
/// is excluded, as is `halt`.
fn op_is_fast(op: &Op) -> bool {
    matches!(
        op,
        Op::Nop
            | Op::AluR { .. }
            | Op::AluI { .. }
            | Op::Mul { .. }
            | Op::LoadImmLow { .. }
            | Op::LoadImmHigh { .. }
            | Op::LoadImm32 { .. }
            | Op::Cmp { .. }
            | Op::CmpI { .. }
            | Op::PredSet { .. }
            | Op::Mts { .. }
            | Op::Mfs { .. }
            | Op::Br { .. }
            | Op::Load {
                area: MemArea::Stack | MemArea::Spm,
                ..
            }
            | Op::Store {
                area: MemArea::Stack | MemArea::Spm,
                ..
            }
    )
}

/// The predecoded image of one function, built when the method cache
/// fills it and dropped when the method cache evicts it. `pre[i]` is
/// `None` at bundle-continuation words, exactly mirroring the `bundles`
/// table so a bad PC faults identically on every tier.
///
/// Held behind an [`Arc`] so the fast loop can keep a handle to the
/// current function across `&mut self` steps: fast-class bundles can
/// never trigger a method-cache fill, so the decoded map cannot change
/// under the handle mid-burst.
#[derive(Debug, Clone)]
struct DecodedFunc {
    start_word: u32,
    end_word: u32,
    pre: Vec<Option<PreBundle>>,
}

impl DecodedFunc {
    #[inline]
    fn contains(&self, pc: u32) -> bool {
        pc >= self.start_word && pc < self.end_word
    }

    #[inline]
    fn bundle_at(&self, pc: u32) -> Option<&PreBundle> {
        self.pre
            .get((pc.wrapping_sub(self.start_word)) as usize)
            .and_then(|p| p.as_ref())
    }
}

/// One Patmos core executing an [`ObjectImage`].
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    bundles: Vec<Option<Bundle>>,
    functions: Vec<FuncInfo>,
    mem: MainMemory,
    spm: Scratchpad,
    mcache: MethodCache,
    dcache: SetAssocCache,
    ccache: SetAssocCache,
    scache: StackCache,
    regs: [u32; NUM_REGS],
    preds: [bool; NUM_PREDS],
    sl: u32,
    sh: u32,
    sm: u32,
    pc: u32,
    now: u64,
    bundle_index: u64,
    reg_ready: [u64; NUM_REGS],
    mul_ready: u64,
    pending_load: Option<PendingLoad>,
    wb_drains_at: u64,
    pending_flow: Option<PendingFlow>,
    stats: Stats,
    halted: bool,
    started: bool,
    /// Predecoded bundles, parallel to `functions`; `Some` exactly while
    /// the function is method-cache resident (plus the documented
    /// oversized-streaming exception in `ensure_decoded`).
    decoded: Vec<Option<Arc<DecodedFunc>>>,
    /// Index into `decoded` of the function the PC was last found in — a
    /// hint that makes the per-bundle lookup O(1) on the hot path.
    cur_func: usize,
    host: HostStats,
    /// A malformed code image, surfaced as an error at the first step
    /// instead of a construction-time panic.
    decode_error: Option<SimError>,
    /// Live fault-injection state when [`SimConfig::faults`] is armed.
    faults: Option<Box<FaultState>>,
    /// The control-flow checker, when installed.
    flow_check: Option<Box<FlowCheckState>>,
}

impl Simulator {
    /// Loads an image into a fresh core.
    ///
    /// A malformed code image does not panic here: the decode failure is
    /// stored and returned as [`SimError::MalformedImage`] by the first
    /// step. Use [`Simulator::try_new`] to surface it at construction.
    pub fn new(image: &ObjectImage, config: SimConfig) -> Simulator {
        let code = image.code();
        let mut bundles = vec![None; code.len()];
        let mut decode_error = None;
        match image.decode() {
            Ok(decoded) => {
                for (addr, bundle) in decoded {
                    bundles[addr as usize] = Some(bundle);
                }
            }
            Err(e) => {
                decode_error = Some(SimError::MalformedImage {
                    reason: e.to_string(),
                });
            }
        }
        let functions = image.functions().to_vec();
        let decoded = vec![None; functions.len()];
        let mut mem = MainMemory::new(config.mem);
        mem.load_words(CODE_BASE, code);
        for seg in image.data() {
            mem.load_bytes(seg.addr, &seg.bytes);
        }
        let mut regs = [0u32; NUM_REGS];
        regs[patmos_isa::SHADOW_SP.index() as usize] = SHADOW_STACK_TOP;
        let mut preds = [false; NUM_PREDS];
        preds[0] = true;

        Simulator {
            bundles,
            functions,
            spm: Scratchpad::new(config.spm_bytes),
            mcache: MethodCache::new(config.method_cache),
            dcache: SetAssocCache::new(
                config.data_cache.sets,
                config.data_cache.ways,
                config.data_cache.line_words,
                config.data_cache.policy,
            ),
            ccache: SetAssocCache::new(
                config.static_cache.sets,
                config.static_cache.ways,
                config.static_cache.line_words,
                config.static_cache.policy,
            ),
            scache: StackCache::new(config.stack_cache_words, STACK_TOP),
            mem,
            regs,
            preds,
            sl: 0,
            sh: 0,
            sm: 0,
            pc: image.entry_word(),
            now: 0,
            bundle_index: 0,
            reg_ready: [0; NUM_REGS],
            mul_ready: 0,
            pending_load: None,
            wb_drains_at: 0,
            pending_flow: None,
            stats: Stats::default(),
            halted: false,
            started: false,
            decoded,
            cur_func: 0,
            host: HostStats::default(),
            decode_error,
            faults: config.faults.as_ref().map(|p| Box::new(FaultState::new(p))),
            flow_check: None,
            config,
        }
    }

    /// Loads an image into a fresh core, rejecting a malformed one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedImage`] if the image's code section
    /// does not decode into bundles.
    pub fn try_new(image: &ObjectImage, config: SimConfig) -> Result<Simulator, SimError> {
        let sim = Simulator::new(image, config);
        match &sim.decode_error {
            Some(e) => Err(e.clone()),
            None => Ok(sim),
        }
    }

    /// Reads a general-purpose register (for inspecting results).
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.index() as usize]
    }

    /// Writes a general-purpose register (for test setup).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if !reg.is_zero() {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// Reads a predicate register.
    pub fn pred(&self, pred: Pred) -> bool {
        self.preds[pred.index() as usize]
    }

    /// The main memory (for inspecting results).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable main memory (for preparing inputs).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// The scratchpad.
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.spm
    }

    /// Mutable scratchpad (for preparing inputs).
    pub fn scratchpad_mut(&mut self) -> &mut Scratchpad {
        &mut self.spm
    }

    /// Execution counters so far.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.cycles = self.now;
        s.method_cache = self.mcache.stats();
        s.data_cache = self.dcache.stats();
        s.static_cache = self.ccache.stats();
        s.stack_cache = self.scache.stats();
        s
    }

    /// Host-side engine-tier counters (how the run was simulated, not
    /// what the guest did).
    pub fn host_stats(&self) -> HostStats {
        self.host
    }

    /// Whether the core reached `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// The current program counter (word address).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Runs until `halt` or an error.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for contract violations (strict mode), bad
    /// control flow, or an exceeded cycle budget.
    pub fn run(&mut self) -> Result<RunResult, SimError> {
        self.run_traced(&mut NullSink)
    }

    /// Runs until `halt` or an error, streaming [`TraceEvent`]s into the
    /// sink. With [`NullSink`] this is exactly [`Simulator::run`]: the
    /// `if S::ENABLED` guards compile every event construction away, so
    /// a traced run is cycle-bit-identical to an untraced one.
    ///
    /// # Errors
    ///
    /// As [`Simulator::run`].
    pub fn run_traced<S: TraceSink>(&mut self, sink: &mut S) -> Result<RunResult, SimError> {
        // An armed fault plan or an installed control-flow checker pins
        // the run to the reference interpreter: the injection and
        // checking hooks live only on that path, and the engine
        // differential sweep proves the choice invisible to the guest.
        if S::ENABLED
            || !self.config.fast_path
            || self.faults.is_some()
            || self.flow_check.is_some()
        {
            // Reference engine: the per-bundle interpreter, which is also
            // the only path that can emit trace events.
            while !self.halted {
                self.step_traced(sink)?;
            }
        } else {
            // Fast engine. Non-generic on purpose: every crate that
            // instantiates `run_traced::<NullSink>` links the one copy
            // below instead of re-optimizing the hot loop locally.
            self.run_fast_engine()?;
        }
        Ok(RunResult {
            stats: self.stats(),
            halt_pc: self.pc,
        })
    }

    /// The fast engine's driver: basic-block bursts over predecoded
    /// bundles. A burst that stops at a decoded non-fast bundle hands
    /// it straight to the general predecoded step (no second lookup);
    /// every other stop takes the full fallback path.
    fn run_fast_engine(&mut self) -> Result<(), SimError> {
        while !self.halted {
            let stop = self.run_fast()?;
            if self.halted {
                break;
            }
            if let Some(pb) = stop {
                let before = self.now;
                self.step_decoded(&pb)?;
                self.host.pre_bundles += 1;
                self.host.pre_cycles += self.now - before;
            } else {
                self.step_pre()?;
            }
        }
        Ok(())
    }

    /// A main-memory transfer of `words` words: orders it after the
    /// posted-write buffer, waits for TDMA grants, advances time, and
    /// attributes the whole stall to `cause` at word address `pc`. Under
    /// TDMA, transfers that exceed one slot are split into per-slot
    /// chunks (each paying the burst setup again), as a real slotted
    /// memory controller would.
    fn transact_words<S: TraceSink>(
        &mut self,
        words: u32,
        cause: StallCause,
        pc: u32,
        sink: &mut S,
    ) {
        if words == 0 {
            return;
        }
        let begin = self.now;
        match self.config.tdma {
            None => {
                let start = self.now.max(self.wb_drains_at);
                self.now = start + self.mem.burst_cycles(words) as u64;
            }
            Some((arb, core)) => {
                let cfg = self.mem.config();
                let chunk = ((arb.slot_cycles().saturating_sub(cfg.latency))
                    / cfg.cycles_per_word.max(1))
                .max(1);
                assert!(
                    arb.fits(cfg.burst_cycles(chunk)),
                    "TDMA slot too short for a single-word burst"
                );
                let mut remaining = words;
                while remaining > 0 {
                    let w = remaining.min(chunk);
                    let burst = self.mem.burst_cycles(w);
                    let start = self.now.max(self.wb_drains_at);
                    let granted = arb.grant(core, start, burst);
                    self.stats.stalls.tdma_wait += granted - start;
                    if S::ENABLED && granted > start {
                        sink.event(TraceEvent::TdmaWait {
                            pc,
                            cycle: granted,
                            cycles: granted - start,
                        });
                    }
                    self.now = granted + burst as u64;
                    remaining -= w;
                }
            }
        }
        let stall = self.now - begin;
        match cause {
            StallCause::MethodCache => self.stats.stalls.method_cache += stall,
            StallCause::DataCache => self.stats.stalls.data_cache += stall,
            StallCause::StaticCache => self.stats.stalls.static_cache += stall,
            StallCause::StackCache => self.stats.stalls.stack_cache += stall,
            StallCause::SplitLoad => self.stats.stalls.split_load += stall,
            StallCause::WriteBuffer => self.stats.stalls.write_buffer += stall,
        }
        if S::ENABLED && stall > 0 {
            sink.event(TraceEvent::Stall {
                pc,
                cycle: self.now,
                cycles: stall,
                cause,
            });
        }
    }

    /// Posts a one-word write: stalls only if the buffer is full; the
    /// drain itself happens in the background.
    fn post_write<S: TraceSink>(&mut self, pc: u32, sink: &mut S) {
        if self.wb_drains_at > self.now {
            let wait = self.wb_drains_at - self.now;
            self.stats.stalls.write_buffer += wait;
            self.now = self.wb_drains_at;
            if S::ENABLED {
                sink.event(TraceEvent::Stall {
                    pc,
                    cycle: self.now,
                    cycles: wait,
                    cause: StallCause::WriteBuffer,
                });
            }
        }
        let burst = self.mem.burst_cycles(1);
        let granted = match &self.config.tdma {
            Some((arb, core)) => arb.grant(*core, self.now, burst),
            None => self.now,
        };
        self.wb_drains_at = granted + burst as u64;
    }

    fn function_starting_at(&self, word: u32) -> Option<&FuncInfo> {
        self.functions.iter().find(|f| f.start_word == word)
    }

    fn function_at(&self, word: u32) -> Option<&FuncInfo> {
        self.functions
            .iter()
            .find(|f| word >= f.start_word && word < f.start_word + f.size_words)
    }

    /// Charges a method-cache lookup for the function at `start`/`size`.
    /// The stall (and the lookup event) attribute to the entered
    /// function's first word.
    ///
    /// The predecoded-bundle cache is keyed to exactly these fill
    /// events: a miss decodes the entering function once, an eviction
    /// drops the victim's decoded image.
    fn method_fill<S: TraceSink>(&mut self, start: u32, size: u32, sink: &mut S) {
        let functions = &self.functions;
        let decoded = &mut self.decoded;
        let access = self.mcache.access_with(start, size, |evicted| {
            if let Some(i) = functions.iter().position(|f| f.start_word == evicted) {
                decoded[i] = None;
            }
        });
        if !access.hit {
            self.ensure_decoded(start);
        }
        if S::ENABLED {
            sink.event(TraceEvent::CacheAccess {
                pc: start,
                cycle: self.now,
                cache: CacheKind::Method,
                hit: access.hit,
                transfer_words: access.transfer_words,
            });
        }
        if !access.hit {
            self.transact_words(access.transfer_words, StallCause::MethodCache, start, sink);
        }
    }

    /// Builds the predecoded image of the function starting at `start`
    /// (a no-op if it is already built). An oversized function that only
    /// streams through the method cache is never resident and so never
    /// reported evicted; its decoded image deliberately survives — a
    /// host-only cache of immutable code, re-decoding it per call would
    /// buy nothing.
    fn ensure_decoded(&mut self, start: u32) {
        let Some(idx) = self.functions.iter().position(|f| f.start_word == start) else {
            return;
        };
        self.cur_func = idx;
        if self.decoded[idx].is_some() {
            return;
        }
        let f = &self.functions[idx];
        let end = f.start_word + f.size_words;
        let mut pre = Vec::with_capacity(f.size_words as usize);
        for w in f.start_word..end {
            pre.push(
                self.bundles
                    .get(w as usize)
                    .and_then(|b| b.map(PreBundle::new)),
            );
        }
        self.decoded[idx] = Some(Arc::new(DecodedFunc {
            start_word: f.start_word,
            end_word: end,
            pre,
        }));
    }

    /// The decoded function containing `pc`, if any: the `cur_func` hint
    /// first (O(1) on the hot path), then a scan that refreshes the
    /// hint. The returned handle stays valid across steps — fast-class
    /// bundles never refill the method cache, so nothing drops it
    /// mid-burst.
    #[inline]
    fn decoded_func_at(&mut self, pc: u32) -> Option<Arc<DecodedFunc>> {
        if let Some(Some(df)) = self.decoded.get(self.cur_func) {
            if df.contains(pc) {
                return Some(df.clone());
            }
        }
        for (i, d) in self.decoded.iter().enumerate() {
            if let Some(df) = d {
                if df.contains(pc) {
                    self.cur_func = i;
                    return Some(df.clone());
                }
            }
        }
        None
    }

    /// The predecoded bundle at `pc`, by value — the general step copies
    /// one 48-byte bundle instead of retaining a whole-function handle
    /// (no atomic refcount traffic on the per-bundle path).
    #[inline]
    fn pre_bundle_copy(&mut self, pc: u32) -> Option<PreBundle> {
        if let Some(Some(df)) = self.decoded.get(self.cur_func) {
            if df.contains(pc) {
                return df.bundle_at(pc).copied();
            }
        }
        for (i, d) in self.decoded.iter().enumerate() {
            if let Some(df) = d {
                if df.contains(pc) {
                    self.cur_func = i;
                    return df.bundle_at(pc).copied();
                }
            }
        }
        None
    }

    fn check_reg_ready(&self, reg: Reg) -> Result<(), SimError> {
        self.check_reg_ready_at(reg, self.pc, self.bundle_index)
    }

    /// [`Simulator::check_reg_ready`] against an explicit PC and bundle
    /// index — the batched fast loop keeps both in locals.
    #[inline(always)]
    fn check_reg_ready_at(&self, reg: Reg, pc: u32, bundle_index: u64) -> Result<(), SimError> {
        if !self.config.strict {
            return Ok(());
        }
        let ready = self.reg_ready[reg.index() as usize];
        if ready > bundle_index {
            return Err(SimError::DelayViolation {
                pc,
                reg,
                bundles_short: (ready - bundle_index) as u32,
            });
        }
        Ok(())
    }

    fn effective_address(&self, area: MemArea, ra: Reg, offset: i16, size: AccessSize) -> u32 {
        let scaled = (offset as i32).wrapping_mul(size.bytes() as i32) as u32;
        let raw = self.regs[ra.index() as usize].wrapping_add(scaled);
        match area {
            MemArea::Stack => self.scache.stack_top().wrapping_add(raw),
            _ => raw,
        }
    }

    fn mem_read(&self, addr: u32, size: AccessSize, spm: bool) -> u32 {
        if spm {
            match size {
                AccessSize::Byte => self.spm.read_byte(addr) as u32,
                AccessSize::Half => self.spm.read_half(addr) as u32,
                AccessSize::Word => self.spm.read_word(addr),
            }
        } else {
            match size {
                AccessSize::Byte => self.mem.read_byte(addr) as u32,
                AccessSize::Half => self.mem.read_half(addr) as u32,
                AccessSize::Word => self.mem.read_word(addr),
            }
        }
    }

    fn mem_write(&mut self, addr: u32, size: AccessSize, value: u32, spm: bool) {
        if spm {
            match size {
                AccessSize::Byte => self.spm.write_byte(addr, value as u8),
                AccessSize::Half => self.spm.write_half(addr, value as u16),
                AccessSize::Word => self.spm.write_word(addr, value),
            }
        } else {
            match size {
                AccessSize::Byte => self.mem.write_byte(addr, value as u8),
                AccessSize::Half => self.mem.write_half(addr, value as u16),
                AccessSize::Word => self.mem.write_word(addr, value),
            }
        }
    }

    fn check_stack_window(&self, ea: u32) -> Result<(), SimError> {
        self.check_stack_window_at(ea, self.pc)
    }

    /// [`Simulator::check_stack_window`] against an explicit PC — the
    /// batched fast loop keeps the PC in a local.
    #[inline(always)]
    fn check_stack_window_at(&self, ea: u32, pc: u32) -> Result<(), SimError> {
        if !self.config.strict {
            return Ok(());
        }
        let st = self.scache.stack_top();
        let offset_words = ea.wrapping_sub(st) / 4;
        if ea < st || !self.scache.covers(offset_words) {
            return Err(SimError::StackWindowViolation { pc, offset_words });
        }
        Ok(())
    }

    /// Executes one bundle.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.step_traced(&mut NullSink)
    }

    /// Executes one bundle, streaming its [`TraceEvent`]s into the sink.
    ///
    /// # Errors
    ///
    /// As [`Simulator::step`].
    pub fn step_traced<S: TraceSink>(&mut self, sink: &mut S) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        if let Some(e) = &self.decode_error {
            return Err(e.clone());
        }
        if !self.started {
            self.started = true;
            // Cold start: the entry function streams into the method cache.
            if let Some(f) = self.function_at(self.pc).cloned() {
                self.method_fill(f.start_word, f.size_words, sink);
            }
        }
        if self.now >= self.config.max_cycles {
            return Err(SimError::MaxCyclesExceeded {
                limit: self.config.max_cycles,
            });
        }
        if self.fault_pending() {
            self.service_cycle_faults(sink);
        }

        let bundle = *self
            .bundles
            .get(self.pc as usize)
            .and_then(|b| b.as_ref())
            .ok_or(SimError::BadPc { pc: self.pc })?;

        // --- Pre-state operand reads (both slots read simultaneously) ---
        let mut slot_ops: Vec<(Inst, bool, [u32; 2])> = Vec::with_capacity(2);
        for inst in bundle.slots() {
            for reg in inst.op.uses().into_iter().flatten() {
                self.check_reg_ready(reg)?;
            }
            if self.config.strict {
                if let Op::Mfs {
                    ss: SpecialReg::Sl | SpecialReg::Sh,
                    ..
                } = inst.op
                {
                    if self.mul_ready > self.bundle_index {
                        return Err(SimError::MulGapViolation { pc: self.pc });
                    }
                }
            }
            let guard_true = inst.guard.eval(&self.preds);
            let uses = inst.op.uses();
            let vals = [
                uses[0].map_or(0, |r| self.regs[r.index() as usize]),
                uses[1].map_or(0, |r| self.regs[r.index() as usize]),
            ];
            slot_ops.push((*inst, guard_true, vals));
        }

        // --- Issue ---
        let had_pending_flow = self.pending_flow.is_some();
        let issue_cycles = if self.config.dual_issue {
            1
        } else {
            bundle.slots().count() as u64
        };
        self.now += issue_cycles;
        self.bundle_index += 1;
        self.stats.bundles += 1;
        self.stats.issue_cycles += issue_cycles;
        // Snapshot for the retire event's per-bundle deltas.
        let issue_end = self.now;
        let snap = if S::ENABLED {
            self.stats
        } else {
            Stats::default()
        };
        // The second slot counts as used only when it actually executes:
        // an annulled (false-guard) operation occupies the slot but does
        // no work, exactly like an encoded `nop`.
        if let Some((inst, guard_true, _)) = slot_ops.get(1) {
            if !matches!(inst.op, Op::Nop) && *guard_true {
                self.stats.second_slots_used += 1;
            }
        }
        // A bundle of encoded `nop`s is scheduler filler; tracking it
        // separately lets utilisation ratios exclude it.
        if slot_ops
            .iter()
            .all(|(inst, _, _)| matches!(inst.op, Op::Nop))
        {
            self.stats.nop_bundles += 1;
        }

        let width = bundle.width_words();
        let this_pc = self.pc;
        let mut new_flow: Option<PendingFlow> = None;

        // --- Effects ---
        for (inst, guard_true, vals) in slot_ops {
            self.exec_slot(
                inst,
                guard_true,
                vals,
                this_pc,
                had_pending_flow,
                &mut new_flow,
                sink,
            )?;
        }
        self.post_effects(
            width,
            this_pc,
            new_flow,
            issue_cycles,
            issue_end,
            snap,
            sink,
        )?;
        if self.fault_pending() {
            self.service_retire_faults(this_pc, sink);
        }
        Ok(())
    }

    /// Installs the control-flow checker: every retired call and return
    /// (and loop-header entry) is validated against `map`. Forces the
    /// reference interpreter, like an armed fault plan.
    pub fn install_flow_checker(&mut self, map: ControlFlowMap) {
        self.flow_check = Some(Box::new(FlowCheckState::new(map)));
    }

    /// Cycle of the first fired injection, if any fired yet.
    pub fn fault_injected_at(&self) -> Option<u64> {
        self.faults.as_ref().and_then(|f| f.injected_at)
    }

    /// How many of the armed plan's injections have fired.
    pub fn faults_injected(&self) -> u32 {
        self.faults.as_ref().map_or(0, |f| f.injected)
    }

    /// Whether any armed injection is still waiting to fire. Gates the
    /// per-cycle/per-retirement service calls so an exhausted (or empty)
    /// plan costs one length test per site, not a trigger scan.
    #[inline]
    fn fault_pending(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| !f.pending.is_empty())
    }

    /// Fires pending cycle-triggered injections whose trigger has
    /// arrived.
    fn service_cycle_faults<S: TraceSink>(&mut self, sink: &mut S) {
        let mut state = self.faults.take().expect("checked by caller");
        let now = self.now;
        let mut fired = Vec::new();
        state.pending.retain(|(inj, _)| {
            if let FaultTrigger::Cycle(c) = inj.trigger {
                if now >= c {
                    fired.push(inj.target);
                    return false;
                }
            }
            true
        });
        if !fired.is_empty() {
            state.injected_at.get_or_insert(now);
            state.injected += fired.len() as u32;
        }
        self.faults = Some(state);
        for target in fired {
            self.apply_fault(target, sink);
        }
    }

    /// Fires pending retired-pc-triggered injections for the bundle that
    /// just retired at `this_pc`.
    fn service_retire_faults<S: TraceSink>(&mut self, this_pc: u32, sink: &mut S) {
        let mut state = self.faults.take().expect("checked by caller");
        let mut fired = Vec::new();
        state.pending.retain_mut(|(inj, countdown)| {
            if let FaultTrigger::RetiredPc { pc, .. } = inj.trigger {
                if pc == this_pc {
                    *countdown = countdown.saturating_sub(1);
                    if *countdown == 0 {
                        fired.push(inj.target);
                        return false;
                    }
                }
            }
            true
        });
        if !fired.is_empty() {
            state.injected_at.get_or_insert(self.now);
            state.injected += fired.len() as u32;
        }
        self.faults = Some(state);
        for target in fired {
            self.apply_fault(target, sink);
        }
    }

    /// Flips the targeted state. r0 and p0 stay hardwired; a flip aimed
    /// at them is masked by construction, exactly like the hardware.
    fn apply_fault<S: TraceSink>(&mut self, target: FaultTarget, sink: &mut S) {
        match target {
            FaultTarget::Register { reg, bit } => {
                let idx = (reg as usize) % NUM_REGS;
                if idx != 0 {
                    self.regs[idx] ^= 1 << (bit % 32);
                }
            }
            FaultTarget::Predicate { pred } => {
                let idx = (pred as usize) % NUM_PREDS;
                if idx != 0 {
                    self.preds[idx] = !self.preds[idx];
                }
            }
            FaultTarget::Special { reg, bit } => {
                let mask = 1u32 << (bit % 32);
                match reg {
                    SpecialTarget::Sl => self.sl ^= mask,
                    SpecialTarget::Sh => self.sh ^= mask,
                    SpecialTarget::Sm => self.sm ^= mask,
                }
            }
            FaultTarget::Memory { addr, bit } => {
                let a = addr & !3;
                let w = self.mem.read_word(a) ^ (1 << (bit % 32));
                self.mem.write_word(a, w);
            }
            FaultTarget::CacheTags { cache } => match cache {
                CacheSel::Data => self.dcache.invalidate_all(),
                CacheSel::Static => self.ccache.invalidate_all(),
            },
        }
        if S::ENABLED {
            sink.event(TraceEvent::FaultInjected {
                pc: self.pc,
                cycle: self.now,
                kind: fault_kind(target),
            });
        }
    }

    /// Executes one prepared slot's effects: the counter updates, the
    /// architectural state change, and any stall it triggers. Shared by
    /// the reference interpreter and both predecoded tiers, so the
    /// instruction semantics exist exactly once.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn exec_slot<S: TraceSink>(
        &mut self,
        inst: Inst,
        guard_true: bool,
        vals: [u32; 2],
        this_pc: u32,
        had_pending_flow: bool,
        new_flow: &mut Option<PendingFlow>,
        sink: &mut S,
    ) -> Result<(), SimError> {
        {
            if matches!(inst.op, Op::Nop) {
                self.stats.nops += 1;
                return Ok(());
            }
            if !guard_true {
                self.stats.insts_annulled += 1;
                if inst.op.is_flow() && !matches!(inst.op, Op::Halt) {
                    self.stats.untaken_branches += 1;
                }
                return Ok(());
            }
            self.stats.insts_executed += 1;
            match inst.op {
                Op::Nop => unreachable!("handled above"),
                Op::AluR { op, rd, .. } => {
                    self.write_reg(rd, op.apply(vals[0], vals[1]), 0);
                }
                Op::AluI { op, rd, imm, .. } => {
                    self.write_reg(rd, op.apply(vals[0], imm as i32 as u32), 0);
                }
                Op::Mul { .. } => {
                    let prod = (vals[0] as i32 as i64).wrapping_mul(vals[1] as i32 as i64);
                    self.sl = prod as u32;
                    self.sh = (prod >> 32) as u32;
                    self.mul_ready = self.bundle_index + timing::MUL_GAP as u64;
                }
                Op::LoadImmLow { rd, imm } => {
                    self.write_reg(rd, imm as i16 as i32 as u32, 0);
                }
                Op::LoadImmHigh { rd, imm } => {
                    let low = self.regs[rd.index() as usize] & 0xffff;
                    self.write_reg(rd, ((imm as u32) << 16) | low, 0);
                }
                Op::LoadImm32 { rd, imm } => {
                    self.write_reg(rd, imm, 0);
                }
                Op::Cmp { op, pd, .. } => {
                    self.write_pred(pd, op.apply(vals[0], vals[1]));
                }
                Op::CmpI { op, pd, imm, .. } => {
                    self.write_pred(pd, op.apply(vals[0], imm as i32 as u32));
                }
                Op::PredSet { op, pd, p1, p2 } => {
                    let a = self.preds[p1.pred.index() as usize] ^ p1.negate;
                    let b = self.preds[p2.pred.index() as usize] ^ p2.negate;
                    self.write_pred(pd, op.apply(a, b));
                }
                Op::Load {
                    area,
                    size,
                    rd,
                    ra,
                    offset,
                } => {
                    let ea = self.effective_address(area, ra, offset, size);
                    let value = match area {
                        MemArea::Stack => {
                            self.check_stack_window(ea)?;
                            self.stats.stack_ops += 1;
                            self.mem_read(ea, size, false)
                        }
                        MemArea::Spm => self.mem_read(ea, size, true),
                        MemArea::Static | MemArea::Data => {
                            let (result, kind, cause) = if area == MemArea::Static {
                                (
                                    self.ccache.access(ea, false),
                                    CacheKind::Static,
                                    StallCause::StaticCache,
                                )
                            } else {
                                (
                                    self.dcache.access(ea, false),
                                    CacheKind::Data,
                                    StallCause::DataCache,
                                )
                            };
                            if S::ENABLED {
                                sink.event(TraceEvent::CacheAccess {
                                    pc: this_pc,
                                    cycle: self.now,
                                    cache: kind,
                                    hit: result.hit,
                                    transfer_words: result.transfer_words,
                                });
                            }
                            if !result.hit {
                                self.transact_words(result.transfer_words, cause, this_pc, sink);
                            }
                            self.mem_read(ea, size, false)
                        }
                        MemArea::Main => return Err(SimError::IllegalMainAccess { pc: this_pc }),
                    };
                    self.write_reg(rd, value, timing::LOAD_USE_GAP);
                }
                Op::Store {
                    area,
                    size,
                    ra,
                    offset,
                    rs: _,
                } => {
                    let ea = self.effective_address(area, ra, offset, size);
                    let value = vals[1];
                    match area {
                        MemArea::Stack => {
                            self.check_stack_window(ea)?;
                            self.stats.stack_ops += 1;
                            self.mem_write(ea, size, value, false);
                        }
                        MemArea::Spm => self.mem_write(ea, size, value, true),
                        MemArea::Static | MemArea::Data => {
                            let (result, kind) = if area == MemArea::Static {
                                (self.ccache.access(ea, true), CacheKind::Static)
                            } else {
                                (self.dcache.access(ea, true), CacheKind::Data)
                            };
                            if S::ENABLED {
                                sink.event(TraceEvent::CacheAccess {
                                    pc: this_pc,
                                    cycle: self.now,
                                    cache: kind,
                                    hit: result.hit,
                                    transfer_words: result.transfer_words,
                                });
                            }
                            self.mem_write(ea, size, value, false);
                            self.post_write(this_pc, sink);
                        }
                        MemArea::Main => return Err(SimError::IllegalMainAccess { pc: this_pc }),
                    }
                }
                Op::MainLoad { offset, .. } => {
                    if self.pending_load.is_some() {
                        return Err(SimError::LoadStillPending { pc: this_pc });
                    }
                    let ea = vals[0].wrapping_add((offset as i32 as u32).wrapping_mul(4));
                    let value = self.mem.read_word(ea);
                    let burst = self.mem.burst_cycles(1);
                    let start = self.now.max(self.wb_drains_at);
                    let granted = match &self.config.tdma {
                        Some((arb, core)) => arb.grant(*core, start, burst),
                        None => start,
                    };
                    self.pending_load = Some(PendingLoad {
                        ready_at: granted + burst as u64,
                        value,
                    });
                }
                Op::MainWait { rd } => match self.pending_load.take() {
                    Some(p) => {
                        if p.ready_at > self.now {
                            let wait = p.ready_at - self.now;
                            self.stats.stalls.split_load += wait;
                            self.now = p.ready_at;
                            if S::ENABLED {
                                sink.event(TraceEvent::Stall {
                                    pc: this_pc,
                                    cycle: self.now,
                                    cycles: wait,
                                    cause: StallCause::SplitLoad,
                                });
                            }
                        }
                        self.sm = p.value;
                        self.write_reg(rd, p.value, 0);
                    }
                    None => {
                        if self.config.strict {
                            return Err(SimError::NoPendingLoad { pc: this_pc });
                        }
                        let sm = self.sm;
                        self.write_reg(rd, sm, 0);
                    }
                },
                Op::MainStore { offset, .. } => {
                    let ea = vals[0].wrapping_add((offset as i32 as u32).wrapping_mul(4));
                    self.mem_write(ea, AccessSize::Word, vals[1], false);
                    self.post_write(this_pc, sink);
                }
                Op::Sres { words } => {
                    let effect = self.scache.reserve(words);
                    if S::ENABLED {
                        sink.event(TraceEvent::CacheAccess {
                            pc: this_pc,
                            cycle: self.now,
                            cache: CacheKind::Stack,
                            hit: effect.spill_words == 0,
                            transfer_words: effect.spill_words,
                        });
                    }
                    if effect.spill_words > 0 {
                        self.transact_words(
                            effect.spill_words,
                            StallCause::StackCache,
                            this_pc,
                            sink,
                        );
                    }
                }
                Op::Sens { words } => {
                    let effect = self.scache.ensure(words);
                    if S::ENABLED {
                        sink.event(TraceEvent::CacheAccess {
                            pc: this_pc,
                            cycle: self.now,
                            cache: CacheKind::Stack,
                            hit: effect.fill_words == 0,
                            transfer_words: effect.fill_words,
                        });
                    }
                    if effect.fill_words > 0 {
                        self.transact_words(
                            effect.fill_words,
                            StallCause::StackCache,
                            this_pc,
                            sink,
                        );
                    }
                }
                Op::Sfree { words } => {
                    self.scache.free(words);
                    if S::ENABLED {
                        sink.event(TraceEvent::CacheAccess {
                            pc: this_pc,
                            cycle: self.now,
                            cache: CacheKind::Stack,
                            hit: true,
                            transfer_words: 0,
                        });
                    }
                }
                Op::Mts { sd, .. } => match sd {
                    SpecialReg::Sl => self.sl = vals[0],
                    SpecialReg::Sh => self.sh = vals[0],
                    SpecialReg::Sm => self.sm = vals[0],
                    SpecialReg::St => self.scache.set_stack_top(vals[0] & !3),
                    SpecialReg::Ss => self.scache.set_spill_pointer(vals[0] & !3),
                },
                Op::Mfs { rd, ss } => {
                    let value = match ss {
                        SpecialReg::Sl => self.sl,
                        SpecialReg::Sh => self.sh,
                        SpecialReg::Sm => self.sm,
                        SpecialReg::St => self.scache.stack_top(),
                        SpecialReg::Ss => self.scache.spill_pointer(),
                    };
                    self.write_reg(rd, value, 0);
                }
                Op::Br { .. } | Op::Call { .. } | Op::CallR { .. } | Op::Ret | Op::Halt => {
                    if matches!(inst.op, Op::Halt) {
                        self.halted = true;
                        return Ok(());
                    }
                    if had_pending_flow || new_flow.is_some() {
                        return Err(SimError::FlowInDelaySlot { pc: this_pc });
                    }
                    self.stats.taken_branches += 1;
                    let target = match inst.op.flow_kind() {
                        FlowKind::Branch(off) => FlowTarget::Jump(this_pc.wrapping_add(off as u32)),
                        FlowKind::CallDirect(off) => {
                            FlowTarget::Call(this_pc.wrapping_add(off as u32))
                        }
                        FlowKind::CallIndirect(_) => FlowTarget::Call(vals[0]),
                        FlowKind::Return => FlowTarget::Ret(vals[0]),
                        FlowKind::None | FlowKind::Halt => unreachable!("flow ops only"),
                    };
                    *new_flow = Some(PendingFlow {
                        target,
                        slots_left: inst.delay_slots(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The bundle tail shared by every execution tier: the retire event,
    /// the halt short-circuit, the PC advance, and delay-slot
    /// bookkeeping ending in a redirect.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn post_effects<S: TraceSink>(
        &mut self,
        width: u32,
        this_pc: u32,
        new_flow: Option<PendingFlow>,
        issue_cycles: u64,
        issue_end: u64,
        snap: Stats,
        sink: &mut S,
    ) -> Result<(), SimError> {
        // Every bundle retires exactly one event, the halt bundle
        // included — the event stream reconciles with the counters.
        if S::ENABLED {
            let d = &self.stats;
            sink.event(TraceEvent::Retire {
                pc: this_pc,
                cycle: issue_end,
                issue_cycles,
                executed: (d.insts_executed - snap.insts_executed) as u8,
                annulled: (d.insts_annulled - snap.insts_annulled) as u8,
                nops: (d.nops - snap.nops) as u8,
                second_slot_used: d.second_slots_used > snap.second_slots_used,
                nop_bundle: d.nop_bundles > snap.nop_bundles,
                stack_ops: (d.stack_ops - snap.stack_ops) as u8,
                taken_branch: d.taken_branches > snap.taken_branches,
                untaken_branches: (d.untaken_branches - snap.untaken_branches) as u8,
            });
        }

        if self.halted {
            return Ok(());
        }

        // --- Advance PC and retire delay slots ---
        self.pc = this_pc.wrapping_add(width);
        if let Some(flow) = new_flow {
            self.pending_flow = Some(flow);
        }
        if let Some(mut flow) = self.pending_flow.take() {
            let fresh = new_flow.is_some();
            if !fresh {
                flow.slots_left = flow.slots_left.saturating_sub(1);
            }
            if flow.slots_left == 0 {
                self.redirect(flow.target, sink)?;
            } else {
                self.pending_flow = Some(flow);
            }
        }

        Ok(())
    }

    /// Prepares one slot of a predecoded bundle: contract checks, guard
    /// evaluation, operand reads — the same order as the reference
    /// engine's prep loop, so violations fault identically.
    #[inline(always)]
    fn prep_slot(&self, slot: &PreSlot) -> Result<(Inst, bool, [u32; 2]), SimError> {
        self.prep_slot_at(slot, self.pc, self.bundle_index)
    }

    /// [`Simulator::prep_slot`] against an explicit PC and bundle index
    /// — the batched fast loop keeps both in locals.
    #[inline(always)]
    fn prep_slot_at(
        &self,
        slot: &PreSlot,
        pc: u32,
        bundle_index: u64,
    ) -> Result<(Inst, bool, [u32; 2]), SimError> {
        for reg in slot.uses.into_iter().flatten() {
            self.check_reg_ready_at(reg, pc, bundle_index)?;
        }
        if self.config.strict && slot.mfs_mul && self.mul_ready > bundle_index {
            return Err(SimError::MulGapViolation { pc });
        }
        let guard_true = slot.inst.guard.eval(&self.preds);
        let vals = [
            slot.uses[0].map_or(0, |r| self.regs[r.index() as usize]),
            slot.uses[1].map_or(0, |r| self.regs[r.index() as usize]),
        ];
        Ok((slot.inst, guard_true, vals))
    }

    /// Retires one predecoded bundle with the trace machinery compiled
    /// out. Guest-cycle identical to [`Simulator::step_traced`]: the
    /// prep, issue accounting, effects, and tail run the same code,
    /// minus the per-bundle allocation and decode-time recomputation.
    #[inline(always)]
    fn step_decoded(&mut self, pb: &PreBundle) -> Result<(), SimError> {
        // --- Pre-state operand reads (both slots read simultaneously) ---
        let first = self.prep_slot(&pb.first)?;
        let second = match &pb.second {
            Some(s) => Some(self.prep_slot(s)?),
            None => None,
        };

        // --- Issue ---
        let had_pending_flow = self.pending_flow.is_some();
        let issue_cycles = if self.config.dual_issue || pb.second.is_none() {
            1
        } else {
            2
        };
        self.now += issue_cycles;
        self.bundle_index += 1;
        self.stats.bundles += 1;
        self.stats.issue_cycles += issue_cycles;
        let issue_end = self.now;
        if let Some((inst, guard_true, _)) = &second {
            if !matches!(inst.op, Op::Nop) && *guard_true {
                self.stats.second_slots_used += 1;
            }
        }
        if pb.all_nop {
            self.stats.nop_bundles += 1;
        }

        let this_pc = self.pc;
        let mut new_flow: Option<PendingFlow> = None;

        // --- Effects ---
        let (inst, guard_true, vals) = first;
        self.exec_slot(
            inst,
            guard_true,
            vals,
            this_pc,
            had_pending_flow,
            &mut new_flow,
            &mut NullSink,
        )?;
        if let Some((inst, guard_true, vals)) = second {
            self.exec_slot(
                inst,
                guard_true,
                vals,
                this_pc,
                had_pending_flow,
                &mut new_flow,
                &mut NullSink,
            )?;
        }
        self.post_effects(
            pb.width,
            this_pc,
            new_flow,
            issue_cycles,
            issue_end,
            Stats::default(),
            &mut NullSink,
        )
    }

    /// One general predecoded step: any operation with the trace
    /// machinery compiled out, falling back to the reference step for
    /// code outside the decoded map (including bad PCs, which fault
    /// identically there).
    fn step_pre(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        if let Some(e) = &self.decode_error {
            return Err(e.clone());
        }
        if !self.started {
            self.started = true;
            // Cold start: the entry function streams into the method
            // cache. The fill stall belongs to this engine's driver, so
            // its cycles attribute to the predecoded tier.
            let before = self.now;
            if let Some(f) = self.function_at(self.pc).cloned() {
                self.method_fill(f.start_word, f.size_words, &mut NullSink);
            }
            self.host.pre_cycles += self.now - before;
        }
        if self.now >= self.config.max_cycles {
            return Err(SimError::MaxCyclesExceeded {
                limit: self.config.max_cycles,
            });
        }
        // A continuation word (bad PC) or code outside the decoded map
        // both fall back to the reference step, which faults or executes
        // identically without consulting the map.
        match self.pre_bundle_copy(self.pc) {
            Some(pb) => {
                let before = self.now;
                self.step_decoded(&pb)?;
                self.host.pre_bundles += 1;
                self.host.pre_cycles += self.now - before;
                Ok(())
            }
            None => self.step_traced(&mut NullSink),
        }
    }

    /// The basic-block fast path: retires consecutive fast-class bundles
    /// in a tight loop. Stops at the first bundle that could stall
    /// (memory operations, call/return/halt), at a pending call/return
    /// redirect (those fill the method cache), or off the decoded map —
    /// the caller then takes one general step and re-enters.
    ///
    /// Fast-class bundles only ever advance `now` by their issue cycles
    /// (they cannot stall), so the whole burst's guest cycles are
    /// attributed in one subtraction at exit.
    fn run_fast(&mut self) -> Result<Option<PreBundle>, SimError> {
        if !self.started || self.decode_error.is_some() {
            return Ok(None);
        }
        let entry_now = self.now;
        let mut retired = 0u64;
        let outcome = self.run_fast_burst(&mut retired);
        self.host.fast_bundles += retired;
        self.host.fast_cycles += self.now - entry_now;
        outcome
    }

    /// The batched burst behind [`Simulator::run_fast`]: retires
    /// fast-class bundles with the cycle counter, bundle index, PC,
    /// pending branch, and every Stats counter a fast op can touch held
    /// in locals, flushed back in one step when the burst exits — the
    /// per-bundle field traffic of the general step collapses into
    /// register arithmetic.
    ///
    /// Bit-identity with the reference interpreter holds because the
    /// loop replays its exact phase order: prep faults before issue
    /// accounting, exec faults after it (with the first slot's effects
    /// already applied), and the locals are flushed on *every* exit —
    /// including error paths — so the architectural state at a fault is
    /// indistinguishable from the reference engine's.
    /// Returns the decoded non-fast bundle the burst stopped at, if
    /// that is why it stopped — the driver then retires it via the
    /// general step without a second lookup.
    fn run_fast_burst(&mut self, retired: &mut u64) -> Result<Option<PreBundle>, SimError> {
        if let Some(flow) = &self.pending_flow {
            if matches!(flow.target, FlowTarget::Call(_) | FlowTarget::Ret(_)) {
                return Ok(None);
            }
        }
        let mut st = BurstState {
            now: self.now,
            bundle_index: self.bundle_index,
            pc: self.pc,
            pend: self.pending_flow.take(),
            d: FastDeltas::default(),
        };
        let outcome = self.fast_loop(&mut st);
        self.now = st.now;
        self.bundle_index = st.bundle_index;
        self.pc = st.pc;
        self.pending_flow = st.pend;
        let d = st.d;
        self.stats.bundles += d.bundles;
        self.stats.issue_cycles += d.issue_cycles;
        self.stats.nops += d.nops;
        self.stats.insts_executed += d.insts_executed;
        self.stats.insts_annulled += d.insts_annulled;
        self.stats.second_slots_used += d.second_slots_used;
        self.stats.nop_bundles += d.nop_bundles;
        self.stats.taken_branches += d.taken_branches;
        self.stats.untaken_branches += d.untaken_branches;
        self.stats.stack_ops += d.stack_ops;
        *retired += d.bundles;
        outcome
    }

    /// The hot loop of [`Simulator::run_fast_burst`]. Every mutable
    /// scalar lives in a local; `save!` writes them back at each exit.
    fn fast_loop(&mut self, st: &mut BurstState) -> Result<Option<PreBundle>, SimError> {
        let dual = self.config.dual_issue;
        let max_cycles = self.config.max_cycles;
        let mut now = st.now;
        let mut bi = st.bundle_index;
        let mut pc = st.pc;
        let mut pend = st.pend.take();
        let mut d = st.d;
        macro_rules! save {
            () => {{
                st.now = now;
                st.bundle_index = bi;
                st.pc = pc;
                st.pend = pend;
                st.d = d;
            }};
        }
        'refind: loop {
            // Resolve the decoded function once per region; the inner
            // loop then indexes it directly. The handle cannot go stale:
            // nothing in the fast class fills or evicts.
            let Some(df) = self.decoded_func_at(pc) else {
                save!();
                return Ok(None);
            };
            loop {
                if now >= max_cycles {
                    save!();
                    return Err(SimError::MaxCyclesExceeded { limit: max_cycles });
                }
                if !df.contains(pc) {
                    continue 'refind;
                }
                let Some(pb) = df.bundle_at(pc) else {
                    save!();
                    return Ok(None);
                };
                if !pb.fast {
                    save!();
                    return Ok(Some(*pb));
                }

                // --- Prep: faults leave the bundle unissued ---
                let first = match self.prep_slot_at(&pb.first, pc, bi) {
                    Ok(x) => x,
                    Err(e) => {
                        save!();
                        return Err(e);
                    }
                };
                let second = match &pb.second {
                    Some(s) => match self.prep_slot_at(s, pc, bi) {
                        Ok(x) => Some(x),
                        Err(e) => {
                            save!();
                            return Err(e);
                        }
                    },
                    None => None,
                };

                // --- Issue ---
                let had_pending_flow = pend.is_some();
                let issue_cycles = if dual || pb.second.is_none() { 1 } else { 2 };
                now += issue_cycles;
                bi += 1;
                d.bundles += 1;
                d.issue_cycles += issue_cycles;
                if let Some((inst, guard_true, _)) = &second {
                    if !matches!(inst.op, Op::Nop) && *guard_true {
                        d.second_slots_used += 1;
                    }
                }
                if pb.all_nop {
                    d.nop_bundles += 1;
                }

                // --- Effects: faults flush the partial bundle ---
                let this_pc = pc;
                let mut new_flow: Option<PendingFlow> = None;
                let (inst, guard_true, vals) = first;
                if let Err(e) = self.exec_fast_slot(
                    inst,
                    guard_true,
                    vals,
                    this_pc,
                    had_pending_flow,
                    &mut new_flow,
                    bi,
                    &mut d,
                ) {
                    save!();
                    return Err(e);
                }
                if let Some((inst, guard_true, vals)) = second {
                    if let Err(e) = self.exec_fast_slot(
                        inst,
                        guard_true,
                        vals,
                        this_pc,
                        had_pending_flow,
                        &mut new_flow,
                        bi,
                        &mut d,
                    ) {
                        save!();
                        return Err(e);
                    }
                }

                // --- Advance PC and retire delay slots ---
                pc = this_pc.wrapping_add(pb.width);
                let fresh = new_flow.is_some();
                if fresh {
                    pend = new_flow;
                }
                if let Some(mut flow) = pend.take() {
                    if !fresh {
                        flow.slots_left = flow.slots_left.saturating_sub(1);
                    }
                    if flow.slots_left == 0 {
                        match flow.target {
                            FlowTarget::Jump(t) => pc = t,
                            FlowTarget::Call(_) | FlowTarget::Ret(_) => {
                                unreachable!("the fast class creates only branch flows")
                            }
                        }
                    } else {
                        pend = Some(flow);
                    }
                }
            }
        }
    }

    /// [`Simulator::exec_slot`] specialised to the fast class: the same
    /// effects in the same order, with the Stats increments routed to
    /// the burst's local deltas and the bundle index taken from a local.
    /// The differential sweep (`fastpath_differential`) pins its
    /// equivalence to the reference interpreter op by op.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn exec_fast_slot(
        &mut self,
        inst: Inst,
        guard_true: bool,
        vals: [u32; 2],
        this_pc: u32,
        had_pending_flow: bool,
        new_flow: &mut Option<PendingFlow>,
        bi: u64,
        d: &mut FastDeltas,
    ) -> Result<(), SimError> {
        if matches!(inst.op, Op::Nop) {
            d.nops += 1;
            return Ok(());
        }
        if !guard_true {
            d.insts_annulled += 1;
            // The only flow op in the fast class is a plain branch.
            if inst.op.is_flow() {
                d.untaken_branches += 1;
            }
            return Ok(());
        }
        d.insts_executed += 1;
        match inst.op {
            Op::AluR { op, rd, .. } => {
                self.write_reg_ready_at(rd, op.apply(vals[0], vals[1]), bi);
            }
            Op::AluI { op, rd, imm, .. } => {
                self.write_reg_ready_at(rd, op.apply(vals[0], imm as i32 as u32), bi);
            }
            Op::Mul { .. } => {
                let prod = (vals[0] as i32 as i64).wrapping_mul(vals[1] as i32 as i64);
                self.sl = prod as u32;
                self.sh = (prod >> 32) as u32;
                self.mul_ready = bi + timing::MUL_GAP as u64;
            }
            Op::LoadImmLow { rd, imm } => {
                self.write_reg_ready_at(rd, imm as i16 as i32 as u32, bi);
            }
            Op::LoadImmHigh { rd, imm } => {
                let low = self.regs[rd.index() as usize] & 0xffff;
                self.write_reg_ready_at(rd, ((imm as u32) << 16) | low, bi);
            }
            Op::LoadImm32 { rd, imm } => {
                self.write_reg_ready_at(rd, imm, bi);
            }
            Op::Cmp { op, pd, .. } => {
                self.write_pred(pd, op.apply(vals[0], vals[1]));
            }
            Op::CmpI { op, pd, imm, .. } => {
                self.write_pred(pd, op.apply(vals[0], imm as i32 as u32));
            }
            Op::PredSet { op, pd, p1, p2 } => {
                let a = self.preds[p1.pred.index() as usize] ^ p1.negate;
                let b = self.preds[p2.pred.index() as usize] ^ p2.negate;
                self.write_pred(pd, op.apply(a, b));
            }
            Op::Load {
                area: area @ (MemArea::Stack | MemArea::Spm),
                size,
                rd,
                ra,
                offset,
            } => {
                let ea = self.effective_address(area, ra, offset, size);
                let value = if area == MemArea::Stack {
                    self.check_stack_window_at(ea, this_pc)?;
                    d.stack_ops += 1;
                    self.mem_read(ea, size, false)
                } else {
                    self.mem_read(ea, size, true)
                };
                self.write_reg_ready_at(rd, value, bi + timing::LOAD_USE_GAP as u64);
            }
            Op::Store {
                area: area @ (MemArea::Stack | MemArea::Spm),
                size,
                ra,
                offset,
                rs: _,
            } => {
                let ea = self.effective_address(area, ra, offset, size);
                if area == MemArea::Stack {
                    self.check_stack_window_at(ea, this_pc)?;
                    d.stack_ops += 1;
                    self.mem_write(ea, size, vals[1], false);
                } else {
                    self.mem_write(ea, size, vals[1], true);
                }
            }
            Op::Mts { sd, .. } => match sd {
                SpecialReg::Sl => self.sl = vals[0],
                SpecialReg::Sh => self.sh = vals[0],
                SpecialReg::Sm => self.sm = vals[0],
                SpecialReg::St => self.scache.set_stack_top(vals[0] & !3),
                SpecialReg::Ss => self.scache.set_spill_pointer(vals[0] & !3),
            },
            Op::Mfs { rd, ss } => {
                let value = match ss {
                    SpecialReg::Sl => self.sl,
                    SpecialReg::Sh => self.sh,
                    SpecialReg::Sm => self.sm,
                    SpecialReg::St => self.scache.stack_top(),
                    SpecialReg::Ss => self.scache.spill_pointer(),
                };
                self.write_reg_ready_at(rd, value, bi);
            }
            Op::Br { .. } => {
                if had_pending_flow || new_flow.is_some() {
                    return Err(SimError::FlowInDelaySlot { pc: this_pc });
                }
                d.taken_branches += 1;
                let target = match inst.op.flow_kind() {
                    FlowKind::Branch(off) => FlowTarget::Jump(this_pc.wrapping_add(off as u32)),
                    _ => unreachable!("Br is a branch"),
                };
                *new_flow = Some(PendingFlow {
                    target,
                    slots_left: inst.delay_slots(),
                });
            }
            _ => unreachable!("only fast-class ops reach the fast loop"),
        }
        Ok(())
    }

    fn redirect<S: TraceSink>(&mut self, target: FlowTarget, sink: &mut S) -> Result<(), SimError> {
        if let Some(check) = &mut self.flow_check {
            // Loop flow caps first (they see every transfer), then the
            // edge-set checks for the indirect transfers — calls and
            // returns are the only transfers a corrupted register can
            // steer, since branch targets are immediate.
            match target {
                FlowTarget::Jump(t) => check.note_transfer(t)?,
                FlowTarget::Call(t) => {
                    check.note_transfer(t)?;
                    if !check.map.is_legal_call(t) {
                        return Err(SimError::IllegalControlFlow {
                            pc: self.pc,
                            target: t,
                        });
                    }
                }
                FlowTarget::Ret(t) => {
                    check.note_transfer(t)?;
                    if !check.map.is_legal_return(t) {
                        return Err(SimError::IllegalControlFlow {
                            pc: self.pc,
                            target: t,
                        });
                    }
                }
            }
        }
        match target {
            FlowTarget::Jump(t) => {
                self.pc = t;
            }
            FlowTarget::Call(t) => {
                let f = self
                    .function_starting_at(t)
                    .cloned()
                    .ok_or(SimError::NotAFunction { target: t })?;
                let link = self.pc;
                self.write_reg(LINK_REG, link, 0);
                self.method_fill(f.start_word, f.size_words, sink);
                self.stats.calls += 1;
                if S::ENABLED {
                    sink.event(TraceEvent::Call {
                        pc: t,
                        cycle: self.now,
                    });
                }
                self.pc = t;
            }
            FlowTarget::Ret(t) => {
                let f = self
                    .function_at(t)
                    .cloned()
                    .ok_or(SimError::BadPc { pc: t })?;
                self.method_fill(f.start_word, f.size_words, sink);
                self.stats.returns += 1;
                if S::ENABLED {
                    sink.event(TraceEvent::Return {
                        pc: t,
                        cycle: self.now,
                    });
                }
                self.pc = t;
            }
        }
        Ok(())
    }

    fn write_reg(&mut self, rd: Reg, value: u32, extra_gap: u32) {
        self.write_reg_ready_at(rd, value, self.bundle_index + extra_gap as u64);
    }

    /// [`Simulator::write_reg`] with the ready index precomputed — the
    /// batched fast loop keeps the bundle index in a local.
    #[inline(always)]
    fn write_reg_ready_at(&mut self, rd: Reg, value: u32, ready: u64) {
        if rd.is_zero() {
            return;
        }
        self.regs[rd.index() as usize] = value;
        self.reg_ready[rd.index() as usize] = ready;
    }

    fn write_pred(&mut self, pd: Pred, value: bool) {
        if pd.is_always_true() {
            return;
        }
        self.preds[pd.index() as usize] = value;
    }
}

/// The trace-event category of a fault target.
fn fault_kind(target: FaultTarget) -> FaultKind {
    match target {
        FaultTarget::Register { .. } => FaultKind::Register,
        FaultTarget::Predicate { .. } => FaultKind::Predicate,
        FaultTarget::Special { .. } => FaultKind::Special,
        FaultTarget::Memory { .. } => FaultKind::Memory,
        FaultTarget::CacheTags { .. } => FaultKind::CacheTags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_asm::assemble;

    fn run_src(src: &str) -> (Simulator, RunResult) {
        let image = assemble(src).expect("assembles");
        let mut sim = Simulator::new(&image, SimConfig::default());
        let result = match sim.run() {
            Ok(r) => r,
            Err(e) => panic!("simulation failed: {e}\nsource:\n{src}"),
        };
        (sim, result)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (sim, result) = run_src(
            "        .func main\n        li r1 = 6\n        li r2 = 7\n        add r3 = r1, r2\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R3), 13);
        assert!(result.stats.cycles >= 4);
    }

    #[test]
    fn dual_issue_bundle_executes_both_slots_from_pre_state() {
        // Swap without a temp: both slots read the old values.
        let (sim, _) = run_src(
            "        .func main\n        li r1 = 1\n        li r2 = 2\n        { add r3 = r1, r0 ; add r4 = r2, r0 }\n        { add r1 = r4, r0 ; add r2 = r3, r0 }\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R1), 2);
        assert_eq!(sim.reg(Reg::R2), 1);
    }

    #[test]
    fn guarded_instructions_annul() {
        let (sim, _) = run_src(
            "        .func main\n        li r1 = 5\n        cmpieq p1 = r1, 5\n        (p1) li r2 = 10\n        (!p1) li r3 = 20\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R2), 10);
        assert_eq!(sim.reg(Reg::R3), 0, "annulled");
    }

    #[test]
    fn loop_with_conditional_branch() {
        // Sum 1..=5 with a guarded backwards branch (2 delay slots).
        let (sim, _) = run_src(
            "        .func main\n        li r1 = 0\n        li r2 = 5\nloop:\n        add r1 = r1, r2\n        subi r2 = r2, 1\n        cmpineq p1 = r2, 0\n        (p1) br loop\n        nop\n        nop\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R1), 15);
    }

    #[test]
    fn uncond_branch_has_one_delay_slot() {
        // The single delay slot executes; the skipped instruction does not.
        let (sim, _) = run_src(
            "        .func main\n        br over\n        li r1 = 1\n        li r2 = 2\nover:\n        li r3 = 3\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R1), 1, "delay slot executed");
        assert_eq!(sim.reg(Reg::R2), 0, "skipped");
        assert_eq!(sim.reg(Reg::R3), 3);
    }

    #[test]
    fn cond_branch_has_two_delay_slots() {
        let (sim, _) = run_src(
            "        .func main\n        cmpieq p1 = r0, 0\n        (p1) br over\n        li r1 = 1\n        li r2 = 2\n        li r3 = 3\nover:\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R1), 1, "first delay slot");
        assert_eq!(sim.reg(Reg::R2), 2, "second delay slot");
        assert_eq!(sim.reg(Reg::R3), 0, "beyond delay slots");
    }

    #[test]
    fn call_and_return() {
        let (sim, result) = run_src(
            "        .func double\n        add r1 = r3, r3\n        ret\n        nop\n        nop\n        .func main\n        .entry main\n        li r3 = 21\n        lil r10 = double\n        callr r10\n        nop\n        nop\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R1), 42);
        assert_eq!(result.stats.calls, 1);
        assert_eq!(result.stats.returns, 1);
        // Two method-cache fills: entry (cold) + callee; return hits.
        assert_eq!(result.stats.method_cache.misses, 2);
        assert_eq!(result.stats.method_cache.hits, 1);
        assert!(result.stats.stalls.method_cache > 0);
    }

    #[test]
    fn direct_call_links_and_returns() {
        let (sim, _) = run_src(
            "        .func callee\n        li r5 = 99\n        ret\n        nop\n        nop\n        .func main\n        .entry main\n        call callee\n        nop\n        li r6 = 1\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R5), 99);
        assert_eq!(sim.reg(Reg::R6), 1, "delay slot of call executed");
    }

    #[test]
    fn load_use_gap_enforced() {
        let image = assemble(
            "        .func main\n        li r2 = 64\n        lwd r1 = [r2 + 0]\n        add r3 = r1, r1\n        halt\n",
        )
        .expect("assembles");
        let mut sim = Simulator::new(&image, SimConfig::default());
        match sim.run() {
            Err(SimError::DelayViolation { reg, .. }) => assert_eq!(reg, Reg::R1),
            other => panic!("expected delay violation, got {other:?}"),
        }
    }

    #[test]
    fn load_with_gap_ok_and_charges_miss_once() {
        let (sim, result) = run_src(
            "        .func main\n        lil r2 = 0x10000\n        swc [r2 + 0] = r0\n        lwc r1 = [r2 + 0]\n        nop\n        add r3 = r1, r1\n        lwc r4 = [r2 + 0]\n        nop\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R3), 0);
        assert_eq!(sim.reg(Reg::R4), 0);
        assert_eq!(
            result.stats.static_cache.misses, 2,
            "write miss + first read miss"
        );
        assert_eq!(result.stats.static_cache.hits, 1, "second read hits");
    }

    #[test]
    fn mul_gap_enforced() {
        let image = assemble(
            "        .func main\n        li r1 = 3\n        mul r1, r1\n        mfs r2 = sl\n        halt\n",
        )
        .expect("assembles");
        let mut sim = Simulator::new(&image, SimConfig::default());
        assert!(matches!(sim.run(), Err(SimError::MulGapViolation { .. })));
    }

    #[test]
    fn mul_with_gap_produces_product() {
        let (sim, _) = run_src(
            "        .func main\n        li r1 = 1000\n        li r2 = 1000\n        mul r1, r2\n        nop\n        mfs r3 = sl\n        mfs r4 = sh\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R3), 1_000_000);
        assert_eq!(sim.reg(Reg::R4), 0);
    }

    #[test]
    fn split_load_hides_latency() {
        let (sim, result) = run_src(
            "        .func main\n        lil r2 = 0x20000\n        li r3 = 77\n        stm [r2 + 0] = r3\n        ldm [r2 + 0]\n        li r4 = 1\n        li r5 = 2\n        li r6 = 3\n        li r7 = 4\n        li r8 = 5\n        wres r1\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R1), 77);
        // Five useful bundles between ldm and wres cover most of the
        // 8-cycle burst that was ordered behind the posted store.
        assert!(
            result.stats.stalls.split_load < 12,
            "{}",
            result.stats.stalls.split_load
        );
    }

    #[test]
    fn split_load_wait_without_work_stalls_longer() {
        let (_, eager) = run_src(
            "        .func main\n        lil r2 = 0x20000\n        ldm [r2 + 0]\n        wres r1\n        halt\n",
        );
        let (_, overlapped) = run_src(
            "        .func main\n        lil r2 = 0x20000\n        ldm [r2 + 0]\n        li r4 = 1\n        li r5 = 2\n        li r6 = 3\n        li r7 = 4\n        wres r1\n        halt\n",
        );
        assert!(
            overlapped.stats.stalls.split_load < eager.stats.stalls.split_load,
            "scheduling should hide latency: {} vs {}",
            overlapped.stats.stalls.split_load,
            eager.stats.stalls.split_load
        );
    }

    #[test]
    fn stack_cache_round_trip() {
        let (sim, result) = run_src(
            "        .func main\n        sres 4\n        li r1 = 11\n        sws [r0 + 2] = r1\n        lws r2 = [r0 + 2]\n        nop\n        sfree 4\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R2), 11);
        assert_eq!(result.stats.stalls.stack_cache, 0, "fits in the cache");
    }

    #[test]
    fn stack_window_violation_detected() {
        let image = assemble(
            "        .func main\n        sres 2\n        lws r1 = [r0 + 5]\n        nop\n        halt\n",
        )
        .expect("assembles");
        let mut sim = Simulator::new(&image, SimConfig::default());
        assert!(matches!(
            sim.run(),
            Err(SimError::StackWindowViolation { .. })
        ));
    }

    #[test]
    fn scratchpad_is_separate_and_fast() {
        let (sim, result) = run_src(
            "        .func main\n        li r2 = 16\n        li r1 = 5\n        swl [r2 + 0] = r1\n        lwl r3 = [r2 + 0]\n        nop\n        halt\n",
        );
        assert_eq!(sim.reg(Reg::R3), 5);
        // Only the cold-start method-cache fill stalls; the SPM never does.
        assert_eq!(
            result.stats.stalls.total(),
            result.stats.stalls.method_cache
        );
        // SPM and main memory are distinct address spaces: the value sits
        // at SPM address 16, while main-memory address 16 holds code.
        assert_eq!(sim.scratchpad().read_word(16), 5);
        assert_ne!(sim.memory().read_word(16), 5);
    }

    #[test]
    fn single_issue_mode_costs_extra_cycles() {
        let src = "        .func main\n        li r1 = 1\n        { add r2 = r1, r1 ; addi r3 = r1, 1 }\n        { add r4 = r1, r1 ; addi r5 = r1, 1 }\n        halt\n";
        let image = assemble(src).expect("assembles");
        let mut dual = Simulator::new(&image, SimConfig::default());
        let dual_cycles = dual.run().expect("runs").stats.cycles;
        let single_cfg = SimConfig {
            dual_issue: false,
            ..SimConfig::default()
        };
        let mut single = Simulator::new(&image, single_cfg);
        let single_cycles = single.run().expect("runs").stats.cycles;
        assert_eq!(single_cycles, dual_cycles + 2, "two pair bundles");
        assert_eq!(single.reg(Reg::R5), 2);
    }

    #[test]
    fn runaway_program_hits_cycle_budget() {
        let image =
            assemble("        .func main\nspin:\n        br spin\n        nop\n        halt\n")
                .expect("assembles");
        let cfg = SimConfig {
            max_cycles: 1000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&image, cfg);
        assert!(matches!(sim.run(), Err(SimError::MaxCyclesExceeded { .. })));
    }

    #[test]
    fn method_cache_hit_on_repeated_calls() {
        let (_, result) = run_src(
            "        .func callee\n        ret\n        nop\n        nop\n        .func main\n        .entry main\n        lil r10 = callee\n        callr r10\n        nop\n        nop\n        callr r10\n        nop\n        nop\n        halt\n",
        );
        // Fills: entry (cold) + callee once; second call and both
        // returns hit.
        assert_eq!(result.stats.method_cache.misses, 2);
        assert_eq!(result.stats.method_cache.hits, 3);
    }

    #[test]
    fn counters_are_pinned_on_a_predicated_dual_issue_program() {
        // p1 is true, p2 is false: one second slot executes, one is
        // annulled, one guarded store is annulled. Every counter value
        // below is architectural, not incidental — annulled slots must
        // not count as used second slots, executed instructions, or
        // stack operations.
        let (sim, result) = run_src(
            "        .func main
        li r1 = 5
        cmpieq p1 = r1, 5
        cmpieq p2 = r1, 4
        { (p1) addi r2 = r1, 1 ; (p2) addi r3 = r1, 2 }
        { (p2) addi r4 = r1, 3 ; (p1) addi r5 = r1, 4 }
        sres 2
        sws [r0 + 0] = r2
        (p2) sws [r0 + 1] = r3
        lws r6 = [r0 + 0]
        nop
        sfree 2
        halt
",
        );
        assert_eq!(sim.reg(Reg::R2), 6);
        assert_eq!(sim.reg(Reg::R3), 0, "annulled second slot");
        assert_eq!(sim.reg(Reg::R4), 0, "annulled first slot");
        assert_eq!(sim.reg(Reg::R5), 9, "executed second slot");
        assert_eq!(sim.reg(Reg::R6), 6);
        let s = result.stats;
        assert_eq!(s.bundles, 12);
        assert_eq!(
            s.second_slots_used, 1,
            "only the guard-true second slot counts"
        );
        assert_eq!(
            s.insts_executed, 10,
            "li, 2 cmp, 2 adds, sres, sws, lws, sfree, halt"
        );
        assert_eq!(
            s.insts_annulled, 3,
            "two bundle slots and the guarded store"
        );
        assert_eq!(s.stack_ops, 2, "the annulled store moves no data");
        assert_eq!(s.nops, 1);
        assert_eq!(s.nop_bundles, 1, "the lone nop bundle is filler");
        assert_eq!(s.active_bundles(), 11);
        // Raw utilisation divides by all 12 bundles, the active ratio
        // only by the 11 that issued real work — both are pinned so
        // the denominators cannot silently drift again.
        assert!((s.slot2_utilisation() - 1.0 / 12.0).abs() < 1e-12);
        assert!((s.slot2_utilisation_active() - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn pure_nop_bundles_are_counted_separately() {
        // Three filler bundles: two explicit nops plus the branch's
        // unfilled delay slot; the paired and single real bundles are
        // active. An annulled-but-real slot is not filler.
        let (_, result) = run_src(
            "        .func main
        li r1 = 1
        cmpieq p1 = r1, 2
        { nop ; nop }
        nop
        { addi r2 = r1, 1 ; (p1) addi r3 = r1, 2 }
        br end
        nop
end:
        halt
",
        );
        let s = result.stats;
        assert_eq!(s.bundles, 8);
        assert_eq!(s.nop_bundles, 3);
        assert_eq!(s.active_bundles(), 5);
        assert_eq!(
            s.second_slots_used, 0,
            "an annulled second slot is not used"
        );
    }

    #[test]
    fn traced_run_is_bit_identical_and_reconciles() {
        use patmos_trace::{EventTotals, VecSink};
        // Exercises every event source: a call/return (method-cache
        // fills), static-cache load and store (write buffer), stack
        // cache (sres/sws/lws/sfree), and a split main-memory load.
        let src = "        .func callee\n        li r5 = 9\n        ret\n        nop\n        nop\n        .func main\n        .entry main\n        sres 2\n        lil r2 = 0x10000\n        swc [r2 + 0] = r0\n        lwc r1 = [r2 + 0]\n        nop\n        sws [r0 + 0] = r1\n        lws r6 = [r0 + 0]\n        nop\n        lil r3 = 0x20000\n        ldm [r3 + 0]\n        call callee\n        nop\n        wres r4\n        sfree 2\n        halt\n";
        let image = assemble(src).expect("assembles");

        let mut plain = Simulator::new(&image, SimConfig::default());
        let plain_result = plain.run().expect("runs");

        let mut traced = Simulator::new(&image, SimConfig::default());
        let mut sink = VecSink::new();
        let traced_result = traced.run_traced(&mut sink).expect("runs");

        // Tracing must not perturb the simulation at all.
        assert_eq!(plain_result.stats, traced_result.stats);
        assert_eq!(plain_result.halt_pc, traced_result.halt_pc);

        // The "no hidden state" invariant: every cycle is issue or an
        // attributed stall.
        let s = traced_result.stats;
        assert_eq!(s.cycles, s.issue_cycles + s.stalls.total());

        // The event stream reproduces every counter exactly.
        let t = EventTotals::from_events(&sink.events);
        assert_eq!(t.cycles, s.cycles);
        assert_eq!(t.issue_cycles, s.issue_cycles);
        assert_eq!(t.bundles, s.bundles);
        assert_eq!(t.insts_executed, s.insts_executed);
        assert_eq!(t.insts_annulled, s.insts_annulled);
        assert_eq!(t.nops, s.nops);
        assert_eq!(t.second_slots_used, s.second_slots_used);
        assert_eq!(t.nop_bundles, s.nop_bundles);
        assert_eq!(t.taken_branches, s.taken_branches);
        assert_eq!(t.untaken_branches, s.untaken_branches);
        assert_eq!(t.calls, s.calls);
        assert_eq!(t.returns, s.returns);
        assert_eq!(t.stack_ops, s.stack_ops);
        assert_eq!(t.stall_method_cache, s.stalls.method_cache);
        assert_eq!(t.stall_data_cache, s.stalls.data_cache);
        assert_eq!(t.stall_static_cache, s.stalls.static_cache);
        assert_eq!(t.stall_stack_cache, s.stalls.stack_cache);
        assert_eq!(t.stall_split_load, s.stalls.split_load);
        assert_eq!(t.stall_write_buffer, s.stalls.write_buffer);
        assert_eq!(t.tdma_wait, s.stalls.tdma_wait);
        assert_eq!(t.method_accesses, s.method_cache.accesses);
        assert_eq!(t.method_hits, s.method_cache.hits);
        assert_eq!(t.method_misses, s.method_cache.misses);
        assert_eq!(t.method_transferred_words, s.method_cache.transferred_words);
        assert_eq!(t.data_accesses, s.data_cache.accesses);
        assert_eq!(t.static_accesses, s.static_cache.accesses);
        assert_eq!(t.static_hits, s.static_cache.hits);
        assert_eq!(t.static_misses, s.static_cache.misses);
        assert_eq!(t.static_transferred_words, s.static_cache.transferred_words);
        assert_eq!(t.stack_accesses, s.stack_cache.accesses);
        assert_eq!(t.stack_hits, s.stack_cache.hits);
        assert_eq!(t.stack_misses, s.stack_cache.misses);
        assert_eq!(t.stack_transferred_words, s.stack_cache.transferred_words);

        // Some of everything actually happened.
        assert!(t.stall_method_cache > 0);
        assert!(t.stall_static_cache > 0);
        assert!(t.calls == 1 && t.returns == 1);
    }

    #[test]
    fn tdma_wait_events_reconcile_under_cmp() {
        use patmos_trace::{EventTotals, VecSink};
        let image = assemble(
            "        .func main\n        lil r2 = 0x20000\n        ldm [r2 + 0]\n        wres r1\n        halt\n",
        )
        .expect("assembles");
        let cfg = SimConfig {
            tdma: Some((patmos_mem::TdmaArbiter::new(4, 64), 3)),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&image, cfg);
        let mut sink = VecSink::new();
        let result = sim.run_traced(&mut sink).expect("runs");
        let s = result.stats;
        assert!(s.stalls.tdma_wait > 0, "core 3 waits for its slot");
        assert_eq!(s.cycles, s.issue_cycles + s.stalls.total());
        let t = EventTotals::from_events(&sink.events);
        assert_eq!(t.tdma_wait, s.stalls.tdma_wait);
        assert_eq!(t.cycles, s.cycles);
    }

    #[test]
    fn flow_in_delay_slot_rejected() {
        let image = assemble("        .func main\n        br a\n        br a\na:\n        halt\n")
            .expect("assembles");
        let mut sim = Simulator::new(&image, SimConfig::default());
        assert!(matches!(sim.run(), Err(SimError::FlowInDelaySlot { .. })));
    }

    #[test]
    fn fast_engine_is_bit_identical_to_reference() {
        // The reconciliation program exercises every fast-path exit:
        // calls and returns (method-cache fills), every cache, the write
        // buffer, and a split main-memory load.
        let src = "        .func callee\n        li r5 = 9\n        ret\n        nop\n        nop\n        .func main\n        .entry main\n        sres 2\n        lil r2 = 0x10000\n        swc [r2 + 0] = r0\n        lwc r1 = [r2 + 0]\n        nop\n        sws [r0 + 0] = r1\n        lws r6 = [r0 + 0]\n        nop\n        lil r3 = 0x20000\n        ldm [r3 + 0]\n        call callee\n        nop\n        wres r4\n        sfree 2\n        halt\n";
        let image = assemble(src).expect("assembles");

        let mut fast = Simulator::new(&image, SimConfig::default());
        let fast_result = fast.run().expect("runs");
        let mut slow = Simulator::new(
            &image,
            SimConfig {
                fast_path: false,
                ..SimConfig::default()
            },
        );
        let slow_result = slow.run().expect("runs");

        assert_eq!(fast_result.stats, slow_result.stats);
        assert_eq!(fast_result.halt_pc, slow_result.halt_pc);
        assert_eq!(fast.regs, slow.regs);
        assert_eq!(fast.preds, slow.preds);

        // The fast engine actually engaged; the reference engine left the
        // host counters untouched.
        let h = fast.host_stats();
        assert!(h.fast_bundles > 0, "fast path covered some bundles");
        assert!(h.pre_bundles > 0, "memory bundles took the general tier");
        assert_eq!(slow.host_stats(), HostStats::default());
        assert!(h.fast_coverage(fast_result.stats.cycles) > 0.0);
        assert!(h.predecoded_coverage(fast_result.stats.cycles) <= 1.0);
    }

    #[test]
    fn fast_engine_reports_identical_errors() {
        // A contract violation inside the fast class itself.
        let image = assemble(
            "        .func main\n        li r1 = 3\n        mul r1, r1\n        mfs r2 = sl\n        halt\n",
        )
        .expect("assembles");
        let mut fast = Simulator::new(&image, SimConfig::default());
        let fast_err = fast.run().expect_err("violates the mul gap");
        let mut slow = Simulator::new(
            &image,
            SimConfig {
                fast_path: false,
                ..SimConfig::default()
            },
        );
        assert_eq!(fast_err, slow.run().expect_err("violates the mul gap"));

        // A cycle budget exhausted inside the tight loop.
        let spin =
            assemble("        .func main\nspin:\n        br spin\n        nop\n        halt\n")
                .expect("assembles");
        let cfg = SimConfig {
            max_cycles: 1000,
            ..SimConfig::default()
        };
        let mut fast = Simulator::new(&spin, cfg.clone());
        let fast_err = fast.run().expect_err("exceeds the budget");
        let mut slow = Simulator::new(
            &spin,
            SimConfig {
                fast_path: false,
                ..cfg
            },
        );
        assert_eq!(fast_err, slow.run().expect_err("exceeds the budget"));
        assert_eq!(fast.stats(), slow.stats(), "identical up to the error");
    }

    #[test]
    fn fast_engine_survives_method_cache_evictions() {
        use patmos_mem::{MethodCacheConfig, ReplacementPolicy};
        // A method cache so small that every call and return evicts the
        // previous function: the predecoded images are dropped and
        // rebuilt constantly and must never desynchronise.
        let src = "        .func one\n        addi r1 = r1, 1\n        ret\n        nop\n        nop\n        .func two\n        addi r2 = r2, 1\n        ret\n        nop\n        nop\n        .func main\n        .entry main\n        li r3 = 4\nloop:\n        call one\n        nop\n        call two\n        nop\n        subi r3 = r3, 1\n        cmpineq p1 = r3, 0\n        (p1) br loop\n        nop\n        nop\n        halt\n";
        let image = assemble(src).expect("assembles");
        let cfg = SimConfig {
            method_cache: MethodCacheConfig::new(2, 8, ReplacementPolicy::Fifo),
            ..SimConfig::default()
        };
        let mut fast = Simulator::new(&image, cfg.clone());
        let fast_result = fast.run().expect("runs");
        let mut slow = Simulator::new(
            &image,
            SimConfig {
                fast_path: false,
                ..cfg
            },
        );
        let slow_result = slow.run().expect("runs");
        assert_eq!(fast.reg(Reg::R1), 4);
        assert_eq!(fast.reg(Reg::R2), 4);
        assert_eq!(fast_result.stats, slow_result.stats);
        assert!(
            fast_result.stats.method_cache.misses > 4,
            "the tiny cache actually thrashed"
        );
    }

    #[test]
    fn malformed_image_is_an_error_not_a_panic() {
        // A lone word with the size bit set claims a second word that is
        // not there: guaranteed undecodable.
        let image = ObjectImage::from_raw(
            vec![0x8000_0000],
            vec![FuncInfo {
                name: "main".into(),
                start_word: 0,
                size_words: 1,
            }],
            0,
        );
        assert!(matches!(
            Simulator::try_new(&image, SimConfig::default()),
            Err(SimError::MalformedImage { .. })
        ));
        // The infallible constructor defers the same error to the first
        // step — on both engines.
        for fast_path in [true, false] {
            let mut sim = Simulator::new(
                &image,
                SimConfig {
                    fast_path,
                    ..SimConfig::default()
                },
            );
            assert!(matches!(sim.run(), Err(SimError::MalformedImage { .. })));
        }
    }
}
