//! Simulation errors.

use std::fmt;

use patmos_isa::Reg;

/// Why a simulated program could not continue.
///
/// In strict mode most of these report violations of the ISA's visible
/// timing contract — the compiler bugs Patmos makes detectable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The PC does not point at the start of a decoded bundle.
    BadPc {
        /// The offending word address.
        pc: u32,
    },
    /// A register was read before its producer's visible delay elapsed.
    DelayViolation {
        /// Word address of the consuming bundle.
        pc: u32,
        /// The register read too early.
        reg: Reg,
        /// Bundles still missing before the value is architecturally
        /// visible.
        bundles_short: u32,
    },
    /// `mfs sl/sh` before the multiply gap elapsed.
    MulGapViolation {
        /// Word address of the offending bundle.
        pc: u32,
    },
    /// A control-flow instruction inside another one's delay slots.
    FlowInDelaySlot {
        /// Word address of the offending bundle.
        pc: u32,
    },
    /// A stack-cache access outside the cached window (missing `sens`).
    StackWindowViolation {
        /// Word address of the offending bundle.
        pc: u32,
        /// The accessed offset in words above the stack top.
        offset_words: u32,
    },
    /// `wres` with no outstanding split load.
    NoPendingLoad {
        /// Word address of the offending bundle.
        pc: u32,
    },
    /// A second `ldm` while one is still outstanding.
    LoadStillPending {
        /// Word address of the offending bundle.
        pc: u32,
    },
    /// A call to an address that is not a function entry.
    NotAFunction {
        /// The target word address.
        target: u32,
    },
    /// A typed access named the `main` area (only split accesses may).
    IllegalMainAccess {
        /// Word address of the offending bundle.
        pc: u32,
    },
    /// The cycle budget was exhausted without reaching `halt`.
    MaxCyclesExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The loaded image does not decode into bundles (a corrupt or
    /// hand-forged code section — assembler output always decodes).
    MalformedImage {
        /// The decoder's description of the first undecodable word.
        reason: String,
    },
    /// The control-flow checker saw a resolved call or return leave the
    /// statically legal edge set — a wild branch that lands on valid
    /// code, which the plain contract checks cannot see.
    IllegalControlFlow {
        /// PC at the time of the transfer.
        pc: u32,
        /// The illegal target word address.
        target: u32,
    },
    /// The control-flow checker counted more entries of a loop header
    /// than its `.loopbound` flow cap allows — a runaway loop flagged
    /// before the cycle-budget watchdog expires.
    LoopBoundExceeded {
        /// The loop header's word address.
        header: u32,
        /// The violated bound.
        bound: u32,
    },
    /// A CMP core's host worker thread panicked; the panic is contained
    /// and reported for the lowest affected core instead of aborting the
    /// whole process.
    CoreWorkerPanicked {
        /// The core whose worker died.
        core: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadPc { pc } => write!(f, "pc {pc:#x} is not a bundle start"),
            SimError::DelayViolation { pc, reg, bundles_short } => write!(
                f,
                "bundle at {pc:#x} reads {reg} {bundles_short} bundle(s) before its visible delay elapsed"
            ),
            SimError::MulGapViolation { pc } => {
                write!(f, "bundle at {pc:#x} reads sl/sh inside the multiply gap")
            }
            SimError::FlowInDelaySlot { pc } => {
                write!(f, "control flow in a delay slot at {pc:#x}")
            }
            SimError::StackWindowViolation { pc, offset_words } => write!(
                f,
                "stack access at {pc:#x} to word offset {offset_words} outside the cached window"
            ),
            SimError::NoPendingLoad { pc } => {
                write!(f, "wres at {pc:#x} with no outstanding split load")
            }
            SimError::LoadStillPending { pc } => {
                write!(f, "ldm at {pc:#x} while a split load is outstanding")
            }
            SimError::NotAFunction { target } => {
                write!(f, "call target {target:#x} is not a function entry")
            }
            SimError::IllegalMainAccess { pc } => {
                write!(f, "typed access to the main area at {pc:#x}; use ldm/stm")
            }
            SimError::MaxCyclesExceeded { limit } => {
                write!(f, "exceeded the cycle budget of {limit}")
            }
            SimError::MalformedImage { reason } => {
                write!(f, "image does not decode: {reason}")
            }
            SimError::IllegalControlFlow { pc, target } => {
                write!(
                    f,
                    "control transfer at {pc:#x} to {target:#x} leaves the legal edge set"
                )
            }
            SimError::LoopBoundExceeded { header, bound } => {
                write!(
                    f,
                    "loop header {header:#x} entered more than its flow cap of {bound}"
                )
            }
            SimError::CoreWorkerPanicked { core } => {
                write!(f, "core {core}'s worker thread panicked")
            }
        }
    }
}

impl std::error::Error for SimError {}
