//! Execution statistics with a per-cause stall breakdown.

use std::fmt;

use patmos_mem::CacheStats;

/// Stall cycles attributed to each architectural event — the "no hidden
/// state" accounting that makes Patmos analyzable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Method-cache fills at calls and returns.
    pub method_cache: u64,
    /// Heap data-cache line fills.
    pub data_cache: u64,
    /// Static/constant-cache line fills.
    pub static_cache: u64,
    /// Stack-cache spill (`sres`) and fill (`sens`) traffic.
    pub stack_cache: u64,
    /// Explicit waits for split main-memory loads (`wres`).
    pub split_load: u64,
    /// Waiting for the posted-write buffer to drain.
    pub write_buffer: u64,
    /// Waiting for the TDMA slot in the CMP configuration (the share of
    /// the above events that was pure arbitration delay).
    pub tdma_wait: u64,
}

impl StallBreakdown {
    /// Total stall cycles.
    pub fn total(&self) -> u64 {
        self.method_cache
            + self.data_cache
            + self.static_cache
            + self.stack_cache
            + self.split_load
            + self.write_buffer
    }
}

impl fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "M${} D${} C${} S${} split{} wb{} (tdma share {})",
            self.method_cache,
            self.data_cache,
            self.static_cache,
            self.stack_cache,
            self.split_load,
            self.write_buffer,
            self.tdma_wait
        )
    }
}

/// Counters of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Cycles spent issuing bundles. Together with the stall breakdown
    /// this accounts for every cycle of a run exactly:
    /// `cycles == issue_cycles + stalls.total()`.
    pub issue_cycles: u64,
    /// Bundles issued.
    pub bundles: u64,
    /// Operations executed with a true guard, excluding `nop`s.
    pub insts_executed: u64,
    /// Operations annulled by a false guard.
    pub insts_annulled: u64,
    /// `nop`s issued (explicit plus empty second slots count as zero —
    /// only encoded `nop` operations).
    pub nops: u64,
    /// Bundles whose second slot *executed* a real (non-`nop`)
    /// operation — slots annulled by a false guard do not count.
    pub second_slots_used: u64,
    /// Bundles carrying no real operation in either slot (every slot
    /// an encoded `nop`): scheduler filler for visible delays and
    /// unfilled delay slots.
    pub nop_bundles: u64,
    /// Taken control transfers.
    pub taken_branches: u64,
    /// Untaken (annulled) control transfers.
    pub untaken_branches: u64,
    /// Calls executed.
    pub calls: u64,
    /// Returns executed.
    pub returns: u64,
    /// Executed data accesses to the stack cache (`lws`/`sws` and the
    /// sub-word forms) — the spill/reload traffic the register allocator
    /// tries to minimise.
    pub stack_ops: u64,
    /// Stall cycles by cause.
    pub stalls: StallBreakdown,
    /// Method-cache counters.
    pub method_cache: CacheStats,
    /// Heap data-cache counters.
    pub data_cache: CacheStats,
    /// Static-cache counters.
    pub static_cache: CacheStats,
    /// Stack-cache counters (control ops; misses are spills/fills).
    pub stack_cache: CacheStats,
}

impl Stats {
    /// Instructions (guard-true, non-nop) per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts_executed as f64 / self.cycles as f64
        }
    }

    /// Fraction of *all* bundles that used the second issue slot.
    ///
    /// Pure-`nop` bundles count in the denominator, so this understates
    /// how well real work is paired; see
    /// [`Stats::slot2_utilisation_active`] for the nop-excluded ratio.
    pub fn slot2_utilisation(&self) -> f64 {
        if self.bundles == 0 {
            0.0
        } else {
            self.second_slots_used as f64 / self.bundles as f64
        }
    }

    /// Bundles that issued at least one real operation.
    pub fn active_bundles(&self) -> u64 {
        self.bundles - self.nop_bundles
    }

    /// Fraction of *active* (non-pure-`nop`) bundles that used the
    /// second issue slot — the dual-issue packing quality of the
    /// scheduler, undiluted by delay-slot filler.
    pub fn slot2_utilisation_active(&self) -> f64 {
        let active = self.active_bundles();
        if active == 0 {
            0.0
        } else {
            self.second_slots_used as f64 / active as f64
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cycles ({} issue + {} stall), {} bundles, {} insts (IPC {:.2}), slot2 {:.0}% raw / {:.0}% active",
            self.cycles,
            self.issue_cycles,
            self.stalls.total(),
            self.bundles,
            self.insts_executed,
            self.ipc(),
            self.slot2_utilisation() * 100.0,
            self.slot2_utilisation_active() * 100.0
        )?;
        write!(f, "stalls: {}", self.stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.slot2_utilisation_active(), 0.0);
        s.cycles = 10;
        s.insts_executed = 15;
        s.bundles = 10;
        s.second_slots_used = 5;
        s.nop_bundles = 2;
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.slot2_utilisation() - 0.5).abs() < 1e-12);
        // Excluding the two pure-nop bundles: 5 of 8 active bundles.
        assert_eq!(s.active_bundles(), 8);
        assert!((s.slot2_utilisation_active() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn stall_total_sums_causes() {
        let b = StallBreakdown {
            method_cache: 1,
            data_cache: 2,
            static_cache: 3,
            stack_cache: 4,
            split_load: 5,
            write_buffer: 6,
            tdma_wait: 100, // share, not additive
        };
        assert_eq!(b.total(), 21);
    }
}
