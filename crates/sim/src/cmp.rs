//! Chip-multiprocessor configuration: N cores sharing main memory under
//! TDMA arbitration.
//!
//! "For multi-threaded code we plan to build a chip-multiprocessor system
//! with statically scheduled access to shared main memory" (paper,
//! Section 3). The decisive property of the static TDMA schedule is
//! *composability*: the cycles at which a core may use the memory are a
//! pure function of the core index and the global schedule, never of the
//! other cores' behaviour. Each core can therefore be simulated — and
//! analysed — in isolation with its TDMA-adjusted memory costs, which is
//! exactly what this module does, and exactly why per-core WCET analysis
//! stays tractable (experiment E8). The same composability makes the
//! host-side simulation embarrassingly parallel: cores run on separate
//! `std::thread` workers with bit-identical per-core results.

use patmos_asm::ObjectImage;
use patmos_mem::TdmaArbiter;
use patmos_trace::VecSink;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::machine::{RunResult, Simulator};

/// Result of one core's run within a CMP configuration.
#[derive(Debug, Clone, Copy)]
pub struct CmpResult {
    /// The core index.
    pub core: u32,
    /// That core's run result.
    pub result: RunResult,
}

/// A Patmos chip-multiprocessor: `cores` identical pipelines, private
/// caches and scratchpads, shared main memory behind a TDMA arbiter.
#[derive(Debug, Clone)]
pub struct CmpSystem {
    base_config: SimConfig,
    arbiter: TdmaArbiter,
}

impl CmpSystem {
    /// A CMP with `cores` cores and `slot_cycles`-cycle TDMA slots.
    ///
    /// # Panics
    ///
    /// Panics if a worst-case memory burst (a method-cache block or a
    /// cache line) cannot fit in one slot; configure longer slots.
    pub fn new(base_config: SimConfig, cores: u32, slot_cycles: u32) -> CmpSystem {
        let arbiter = TdmaArbiter::new(cores, slot_cycles);
        let worst_line = base_config
            .data_cache
            .line_words
            .max(base_config.static_cache.line_words);
        let worst_burst = base_config.mem.burst_cycles(worst_line);
        assert!(
            arbiter.fits(worst_burst),
            "a {worst_burst}-cycle line fill does not fit in a {slot_cycles}-cycle TDMA slot"
        );
        CmpSystem {
            base_config,
            arbiter,
        }
    }

    /// The arbiter (e.g. for computing analytical worst-case waits).
    pub fn arbiter(&self) -> TdmaArbiter {
        self.arbiter
    }

    /// The per-core configuration for `core`.
    pub fn core_config(&self, core: u32) -> SimConfig {
        let mut cfg = self.base_config.clone();
        cfg.tdma = Some((self.arbiter, core));
        cfg
    }

    /// Runs `f` for every core on its own `std::thread` worker and
    /// collects the outcomes in core order.
    ///
    /// This is sound *because* of the TDMA schedule: the arbiter is a
    /// pure function of `(core, cycle)` with no shared mutable state, so
    /// each core's timing is independent of when — or on which host
    /// thread — the other cores are simulated. The merge is
    /// deterministic: results are joined in core index order, so the
    /// first failing core's error is returned exactly as it would be by
    /// a sequential loop. A worker that *panics* (a host-side bug, never
    /// a guest error) is contained the same way: every other core's
    /// worker still runs to completion, and the lowest panicked core
    /// surfaces as [`SimError::CoreWorkerPanicked`] in core order.
    fn run_cores<T, F>(&self, f: F) -> Result<Vec<T>, SimError>
    where
        T: Send,
        F: Fn(u32) -> Result<T, SimError> + Sync,
    {
        let f = &f;
        let outcomes = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.arbiter.cores())
                .map(|core| s.spawn(move || f(core)))
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(core, h)| {
                    h.join()
                        .unwrap_or_else(|_| Err(SimError::CoreWorkerPanicked { core: core as u32 }))
                })
                .collect::<Vec<_>>()
        });
        outcomes.into_iter().collect()
    }

    /// Runs the same image on every core and collects per-core results.
    ///
    /// Thanks to the static TDMA schedule the cores are timing-composable
    /// and are executed on parallel host threads without losing cycle
    /// accuracy.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index failing core's [`SimError`], if any.
    pub fn run_all(&self, image: &ObjectImage) -> Result<Vec<CmpResult>, SimError> {
        self.run_cores(|core| {
            let mut sim = Simulator::new(image, self.core_config(core));
            Ok(CmpResult {
                core,
                result: sim.run()?,
            })
        })
    }

    /// Runs the same image on every core, recording each core's full
    /// event stream alongside its result. Cores run on parallel host
    /// threads; each stream is private to its core, so the merged output
    /// is identical to a sequential run.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index failing core's [`SimError`], if any.
    pub fn run_all_traced(
        &self,
        image: &ObjectImage,
    ) -> Result<Vec<(CmpResult, VecSink)>, SimError> {
        self.run_cores(|core| {
            let mut sim = Simulator::new(image, self.core_config(core));
            let mut sink = VecSink::new();
            let result = sim.run_traced(&mut sink)?;
            Ok((CmpResult { core, result }, sink))
        })
    }

    /// Runs a different image on each core, in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `images.len()` differs from the core count.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index failing core's [`SimError`], if any.
    pub fn run_each(&self, images: &[&ObjectImage]) -> Result<Vec<CmpResult>, SimError> {
        assert_eq!(
            images.len() as u32,
            self.arbiter.cores(),
            "one image per core"
        );
        self.run_cores(|core| {
            let mut sim = Simulator::new(images[core as usize], self.core_config(core));
            Ok(CmpResult {
                core,
                result: sim.run()?,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_asm::assemble;

    fn memory_heavy_image() -> ObjectImage {
        // A loop of uncached split loads: every iteration pays the TDMA
        // round trip.
        assemble(
            "        .func main\n        lil r2 = 0x20000\n        li r3 = 8\nloop:\n        .loopbound 8 8\n        ldm [r2 + 0]\n        wres r1\n        subi r3 = r3, 1\n        cmpineq p1 = r3, 0\n        (p1) br loop\n        nop\n        nop\n        halt\n",
        )
        .expect("assembles")
    }

    #[test]
    fn single_core_cmp_matches_alone_when_slot_aligned() {
        let image = memory_heavy_image();
        let cmp = CmpSystem::new(SimConfig::default(), 1, 64);
        let results = cmp.run_all(&image).expect("runs");
        assert_eq!(results.len(), 1);
        assert!(results[0].result.stats.cycles > 0);
    }

    #[test]
    fn more_cores_never_speed_up_a_memory_bound_core() {
        let image = memory_heavy_image();
        let mut last = 0u64;
        for cores in [1u32, 2, 4] {
            let cmp = CmpSystem::new(SimConfig::default(), cores, 64);
            let results = cmp.run_all(&image).expect("runs");
            let worst = results
                .iter()
                .map(|r| r.result.stats.cycles)
                .max()
                .expect("non-empty");
            assert!(
                worst >= last,
                "per-core time must not improve with more cores: {worst} < {last}"
            );
            last = worst;
        }
    }

    #[test]
    fn tdma_wait_is_attributed() {
        let image = memory_heavy_image();
        let cmp = CmpSystem::new(SimConfig::default(), 4, 64);
        let results = cmp.run_all(&image).expect("runs");
        assert!(results.iter().any(|r| r.result.stats.stalls.tdma_wait > 0));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn undersized_slots_rejected() {
        let _ = CmpSystem::new(SimConfig::default(), 2, 2);
    }

    #[test]
    fn poisoned_core_errors_cleanly_and_other_cores_survive() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let cmp = CmpSystem::new(SimConfig::default(), 4, 64);
        let completed = AtomicU32::new(0);
        // Core 2's worker dies on the host; the panic must surface as a
        // clean error, not a process abort, and every other worker must
        // still run to completion.
        let result = cmp.run_cores(|core| {
            if core == 2 {
                panic!("deliberately poisoned worker");
            }
            completed.fetch_add(1, Ordering::SeqCst);
            Ok(core)
        });
        assert_eq!(result, Err(SimError::CoreWorkerPanicked { core: 2 }));
        assert_eq!(completed.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn guest_error_on_lower_core_wins_over_higher_panic() {
        let cmp = CmpSystem::new(SimConfig::default(), 4, 64);
        let result: Result<Vec<u32>, SimError> = cmp.run_cores(|core| match core {
            1 => Err(SimError::BadPc { pc: 0xbad }),
            3 => panic!("deliberately poisoned worker"),
            _ => Ok(core),
        });
        // Merge order is core order: core 1's guest error precedes core
        // 3's host panic.
        assert_eq!(result, Err(SimError::BadPc { pc: 0xbad }));
    }

    #[test]
    fn parallel_cores_match_sequential_per_core_runs() {
        let image = memory_heavy_image();
        let cmp = CmpSystem::new(SimConfig::default(), 4, 64);
        let parallel = cmp.run_all(&image).expect("runs");
        assert_eq!(parallel.len(), 4);
        for r in &parallel {
            // The reference: this core simulated alone, sequentially,
            // on the reference engine.
            let mut alone = Simulator::new(
                &image,
                SimConfig {
                    fast_path: false,
                    ..cmp.core_config(r.core)
                },
            );
            let seq = alone.run().expect("runs");
            assert_eq!(r.result.stats, seq.stats, "core {}", r.core);
            assert_eq!(r.result.halt_pc, seq.halt_pc, "core {}", r.core);
        }
    }

    #[test]
    fn parallel_traced_streams_match_sequential_streams() {
        let image = memory_heavy_image();
        let cmp = CmpSystem::new(SimConfig::default(), 4, 64);
        let traced = cmp.run_all_traced(&image).expect("runs");
        let plain = cmp.run_all(&image).expect("runs");
        for ((r, sink), p) in traced.iter().zip(&plain) {
            assert_eq!(r.result.stats, p.result.stats, "core {}", r.core);
            let mut alone = Simulator::new(&image, cmp.core_config(r.core));
            let mut alone_sink = VecSink::new();
            let alone_result = alone.run_traced(&mut alone_sink).expect("runs");
            assert_eq!(r.result.stats, alone_result.stats, "core {}", r.core);
            assert_eq!(sink.events, alone_sink.events, "core {}", r.core);
        }
    }
}
