//! Deterministic single-event-upset (SEU) fault injection and outcome
//! classification.
//!
//! The paper's safety-critical story bounds *when* a program finishes;
//! this module asks what happens when a bit flips mid-run. A
//! [`FaultPlan`] describes seeded injections — bit flips in the register
//! file, predicate or special registers, main memory, or cache state —
//! fired at a chosen cycle or at the n-th retirement of a chosen PC.
//! Everything is derived from a [`FaultRng`] (splitmix64, no wall
//! clock), so a campaign is a pure function of its seed.
//!
//! An armed plan forces the reference interpreter (the fast engine is
//! bypassed), which is sound because the engine differential sweep
//! proves the engines bit-identical: the reference path *is* the fast
//! path's semantics.
//!
//! Outcomes are classified against a golden (uninjected) run into the
//! four-way [`FaultOutcome`] taxonomy. Three detector layers feed
//! [`FaultOutcome::Detected`]:
//!
//! * the strict-mode ISA contract checks ([`DetectorKind::Contract`]);
//! * the [`MaxCyclesExceeded`](crate::SimError::MaxCyclesExceeded)
//!   watchdog, whose verdict is [`FaultOutcome::Hang`]
//!   ([`DetectorKind::Watchdog`]);
//! * a control-flow checker ([`DetectorKind::ControlFlow`]) that
//!   validates every retired call and return against a statically
//!   derived [`ControlFlowMap`] and caps loop-header entries at their
//!   `.loopbound` flow facts — catching wild branches that land on
//!   decodable-but-wrong bundles, and runaway loops long before the
//!   watchdog fires.
//!
//! The map itself is built by `patmos-wcet` (`flow_map`) from the same
//! CFG the IPET analysis uses; this crate only defines the data model,
//! keeping the dependency arrow pointing wcet → sim.

use std::collections::BTreeSet;

use patmos_asm::ObjectImage;
use patmos_isa::{Reg, LINK_REG, NUM_PREDS, NUM_REGS};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::machine::Simulator;

/// A splitmix64 pseudo-random generator: tiny, seedable, and fully
/// deterministic — fault campaigns must not consult the wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    /// A per-kernel generator: the campaign seed mixed (FNV-1a) with the
    /// kernel name, so every kernel's injection stream is independent of
    /// suite order and thread scheduling.
    pub fn for_kernel(seed: u64, name: &str) -> FaultRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        FaultRng::new(seed ^ h)
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Which special register a [`FaultTarget::Special`] flip hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialTarget {
    /// Multiply result low word.
    Sl,
    /// Multiply result high word.
    Sh,
    /// The predicate bank viewed as a word (`smask`).
    Sm,
}

/// Which cache a [`FaultTarget::CacheTags`] upset hits.
///
/// The caches are timing models (tags only, no data), so a tag upset is
/// modelled as the architecturally safe consequence of a parity-checked
/// tag array: the affected lines are invalidated. The run's values are
/// untouched; only its timing shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSel {
    /// The heap data cache.
    Data,
    /// The static-data/constant cache.
    Static,
}

/// The architectural state a single upset flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Flip `bit` of general-purpose register `reg` (r0 stays hardwired
    /// to zero: a flip aimed at it is masked by construction).
    Register {
        /// Register index, taken modulo the register-file size.
        reg: u8,
        /// Bit position, taken modulo 32.
        bit: u8,
    },
    /// Invert predicate register `pred` (p0 stays hardwired true).
    Predicate {
        /// Predicate index, taken modulo the predicate-bank size.
        pred: u8,
    },
    /// Flip `bit` of a special register.
    Special {
        /// Which special register.
        reg: SpecialTarget,
        /// Bit position, taken modulo 32.
        bit: u8,
    },
    /// Flip `bit` of the main-memory word containing `addr`.
    Memory {
        /// Byte address (word-aligned internally).
        addr: u32,
        /// Bit position within the word, taken modulo 32.
        bit: u8,
    },
    /// Upset a cache's tag state: all lines invalidate (see
    /// [`CacheSel`]).
    CacheTags {
        /// Which cache.
        cache: CacheSel,
    },
}

/// When an injection fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Before issuing the first bundle whose start cycle is `>= cycle`.
    Cycle(u64),
    /// After the `occurrence`-th retirement of the bundle at `pc`
    /// (1-based).
    RetiredPc {
        /// Word address of the trigger bundle.
        pc: u32,
        /// Which retirement fires the fault (1 = the first).
        occurrence: u32,
    },
}

/// One injection: a trigger and the state it flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// When to fire.
    pub trigger: FaultTrigger,
    /// What to flip.
    pub target: FaultTarget,
}

/// The state space a seeded plan draws targets from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpace {
    /// Trigger cycles are drawn from `0..max_cycle` (use the golden
    /// run's cycle count so every draw can land mid-run).
    pub max_cycle: u64,
    /// Byte ranges of main memory eligible for memory flips — normally
    /// the image's data segments ([`FaultSpace::for_image`]).
    pub mem_ranges: Vec<(u32, u32)>,
}

impl FaultSpace {
    /// The space for `image`: memory flips target its data segments.
    pub fn for_image(image: &ObjectImage, max_cycle: u64) -> FaultSpace {
        FaultSpace {
            max_cycle,
            mem_ranges: image
                .data()
                .iter()
                .filter(|seg| !seg.bytes.is_empty())
                .map(|seg| (seg.addr, seg.addr + seg.bytes.len() as u32))
                .collect(),
        }
    }
}

/// A deterministic set of injections for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injections, fired independently as their triggers arrive.
    pub injections: Vec<Injection>,
}

impl FaultPlan {
    /// A plan with one injection.
    pub fn single(injection: Injection) -> FaultPlan {
        FaultPlan {
            injections: vec![injection],
        }
    }

    /// Whether the plan injects anything.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Draws one injection from `rng` over `space`.
    ///
    /// The target mix is fixed (deterministic given the rng state):
    /// mostly register-file flips, with predicate, special-register,
    /// data-memory and cache-tag upsets mixed in, plus a slice of
    /// low-bit flips aimed at the link register — the draw most likely
    /// to produce a *wild but decodable* return that only the
    /// control-flow checker can catch.
    pub fn draw(rng: &mut FaultRng, space: &FaultSpace) -> Injection {
        let cycle = rng.below(space.max_cycle.max(1));
        let target = match rng.below(16) {
            0..=6 => FaultTarget::Register {
                reg: 1 + (rng.below((NUM_REGS - 1) as u64) as u8),
                bit: rng.below(32) as u8,
            },
            7..=8 => FaultTarget::Predicate {
                pred: 1 + (rng.below((NUM_PREDS - 1) as u64) as u8),
            },
            9 => FaultTarget::Special {
                reg: match rng.below(3) {
                    0 => SpecialTarget::Sl,
                    1 => SpecialTarget::Sh,
                    _ => SpecialTarget::Sm,
                },
                bit: rng.below(32) as u8,
            },
            10..=12 if !space.mem_ranges.is_empty() => {
                let (lo, hi) = space.mem_ranges[rng.below(space.mem_ranges.len() as u64) as usize];
                FaultTarget::Memory {
                    addr: lo + (rng.below((hi - lo).max(1) as u64) as u32),
                    bit: rng.below(32) as u8,
                }
            }
            13 => FaultTarget::CacheTags {
                cache: if rng.below(2) == 0 {
                    CacheSel::Data
                } else {
                    CacheSel::Static
                },
            },
            // Directed wild-branch attempt: a low bit of the link
            // register, flipped mid-run — the wild-but-decodable return
            // only the control-flow checker catches.
            14 => FaultTarget::Register {
                reg: LINK_REG.index(),
                bit: rng.below(4) as u8,
            },
            // Directed far-branch attempt: a high link-register bit —
            // the return leaves the code region entirely, which strict
            // mode catches as a bad pc.
            15 => FaultTarget::Register {
                reg: LINK_REG.index(),
                bit: 16 + (rng.below(8) as u8),
            },
            // Memory draws fall back here when the image has no data.
            _ => FaultTarget::Register {
                reg: 1 + (rng.below((NUM_REGS - 1) as u64) as u8),
                bit: rng.below(32) as u8,
            },
        };
        Injection {
            trigger: FaultTrigger::Cycle(cycle),
            target,
        }
    }

    /// A seeded plan of `count` injections over `space`.
    pub fn seeded(seed: u64, count: u32, space: &FaultSpace) -> FaultPlan {
        let mut rng = FaultRng::new(seed);
        FaultPlan {
            injections: (0..count)
                .map(|_| FaultPlan::draw(&mut rng, space))
                .collect(),
        }
    }
}

/// A per-loop flow cap: the `.loopbound`-derived limit on how often the
/// header at `header` may be entered per visit to the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopCap {
    /// Word address of the loop-header block.
    pub header: u32,
    /// Word address of the last bundle of the back-edge source block —
    /// the loop body spans `[header, span_end]`.
    pub span_end: u32,
    /// Maximum header entries per visit (`.loopbound` max).
    pub max: u32,
}

/// The statically legal control-flow facts the runtime checker enforces:
/// legal call entries, legal return sites, and per-loop flow caps.
///
/// Built by `patmos-wcet`'s `flow_map` from the same CFG that feeds the
/// IPET analysis — the checker and the WCET bound share one notion of
/// "the program's possible paths".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControlFlowMap {
    call_targets: BTreeSet<u32>,
    return_sites: BTreeSet<u32>,
    loop_caps: Vec<LoopCap>,
}

impl ControlFlowMap {
    /// An empty map (every call/return is illegal; add facts first).
    pub fn new() -> ControlFlowMap {
        ControlFlowMap::default()
    }

    /// Records `target` as a legal call entry.
    pub fn add_call_target(&mut self, target: u32) {
        self.call_targets.insert(target);
    }

    /// Records `pc` as a legal return site.
    pub fn add_return_site(&mut self, pc: u32) {
        self.return_sites.insert(pc);
    }

    /// Records a loop flow cap.
    pub fn add_loop_cap(&mut self, cap: LoopCap) {
        self.loop_caps.push(cap);
    }

    /// Whether `target` is a legal call entry.
    pub fn is_legal_call(&self, target: u32) -> bool {
        self.call_targets.contains(&target)
    }

    /// Whether `pc` is a legal return site.
    pub fn is_legal_return(&self, pc: u32) -> bool {
        self.return_sites.contains(&pc)
    }

    /// The flow caps.
    pub fn loop_caps(&self) -> &[LoopCap] {
        &self.loop_caps
    }
}

/// Live checker state: the map plus per-cap entry counters.
#[derive(Debug, Clone)]
pub(crate) struct FlowCheckState {
    pub(crate) map: ControlFlowMap,
    /// Header entries since the last transfer out of each cap's span.
    pub(crate) counts: Vec<u32>,
}

impl FlowCheckState {
    pub(crate) fn new(map: ControlFlowMap) -> FlowCheckState {
        let counts = vec![0; map.loop_caps().len()];
        FlowCheckState { map, counts }
    }

    /// Updates the cap counters for a transfer to `target` and reports a
    /// cap violation. A transfer to a header counts an entry; a transfer
    /// out of a cap's span resets its counter (so the cap is per visit,
    /// never across re-entries). The reset-on-exit rule means the check
    /// can only under-count — it never fires on a legal run.
    pub(crate) fn note_transfer(&mut self, target: u32) -> Result<(), SimError> {
        for (cap, count) in self.map.loop_caps.iter().zip(&mut self.counts) {
            if target == cap.header {
                *count += 1;
                if *count > cap.max {
                    return Err(SimError::LoopBoundExceeded {
                        header: cap.header,
                        bound: cap.max,
                    });
                }
            } else if target < cap.header || target > cap.span_end {
                *count = 0;
            }
        }
        Ok(())
    }
}

/// Live injection state for one armed run.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Injections not yet fired, with retire-trigger countdowns.
    pub(crate) pending: Vec<(Injection, u32)>,
    /// Cycle of the first fired injection.
    pub(crate) injected_at: Option<u64>,
    /// How many injections have fired.
    pub(crate) injected: u32,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> FaultState {
        let pending = plan
            .injections
            .iter()
            .map(|inj| {
                let countdown = match inj.trigger {
                    FaultTrigger::Cycle(_) => 0,
                    FaultTrigger::RetiredPc { occurrence, .. } => occurrence.max(1),
                };
                (*inj, countdown)
            })
            .collect();
        FaultState {
            pending,
            injected_at: None,
            injected: 0,
        }
    }
}

/// Which detector layer flagged an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// A strict-mode ISA contract check (delay violations, stack-window
    /// violations, bad PCs, calls to non-functions, …).
    Contract,
    /// The CFG-derived control-flow checker (illegal call/return edges,
    /// `.loopbound` flow caps).
    ControlFlow,
    /// The cycle-budget watchdog; its verdict is [`FaultOutcome::Hang`].
    Watchdog,
}

/// What one injection did to the run, judged against the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The run completed with the golden result, globals, and halt PC.
    Masked,
    /// The run completed but its result, globals, or halt PC differ.
    SilentDataCorruption,
    /// A detector stopped the run.
    Detected(DetectorKind),
    /// The watchdog expired: the run never reached `halt`.
    Hang,
}

impl FaultOutcome {
    /// A stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::SilentDataCorruption => "sdc",
            FaultOutcome::Detected(DetectorKind::Contract) => "detected-contract",
            FaultOutcome::Detected(DetectorKind::ControlFlow) => "detected-control-flow",
            FaultOutcome::Detected(DetectorKind::Watchdog) | FaultOutcome::Hang => "hang",
        }
    }
}

/// The golden (uninjected) run's observable outcome: the comparison
/// basis for classifying injected runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenRun {
    /// The result register (r1) at halt.
    pub result_r1: u32,
    /// The halt PC.
    pub halt_pc: u32,
    /// Total cycles.
    pub cycles: u64,
    /// The data segments read back from memory after the run, in image
    /// order — the program's global state.
    pub globals: Vec<u8>,
}

/// Reads the image's data segments back out of a finished simulator.
fn read_globals(image: &ObjectImage, sim: &Simulator) -> Vec<u8> {
    let mut out = Vec::new();
    for seg in image.data() {
        for i in 0..seg.bytes.len() as u32 {
            out.push(sim.memory().read_byte(seg.addr + i));
        }
    }
    out
}

/// Runs `image` uninjected and captures the golden outcome.
///
/// # Errors
///
/// Returns the run's [`SimError`] — a program that cannot complete
/// cleanly has no golden reference to classify against.
pub fn golden_run(image: &ObjectImage, config: &SimConfig) -> Result<GoldenRun, SimError> {
    let mut sim = Simulator::try_new(image, config.clone())?;
    let result = sim.run()?;
    Ok(GoldenRun {
        result_r1: sim.reg(Reg::R1),
        halt_pc: result.halt_pc,
        cycles: result.stats.cycles,
        globals: read_globals(image, &sim),
    })
}

/// One injected run's classified outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// The four-way classification.
    pub outcome: FaultOutcome,
    /// Whether the injection actually fired (a trigger past the halt
    /// cycle never lands; such runs are trivially masked).
    pub injected: bool,
    /// Cycles from the (first) injection to detection, when a detector
    /// (including the watchdog) stopped the run.
    pub detection_latency: Option<u64>,
    /// Cycles the injected run executed.
    pub cycles: u64,
}

/// Runs `image` with `injection` armed and classifies the outcome
/// against `golden`.
///
/// The watchdog is tightened to a small multiple of the golden cycle
/// count (`4x + 4096`), so a hang is declared within a bounded budget
/// instead of the configured production limit. Passing a `flow` map arms
/// the control-flow checker.
pub fn run_injection(
    image: &ObjectImage,
    config: &SimConfig,
    injection: Injection,
    flow: Option<&ControlFlowMap>,
    golden: &GoldenRun,
) -> InjectionOutcome {
    let mut cfg = config.clone();
    cfg.faults = Some(FaultPlan::single(injection));
    cfg.max_cycles = golden.cycles.saturating_mul(4).saturating_add(4096);
    let mut sim = match Simulator::try_new(image, cfg) {
        Ok(sim) => sim,
        Err(_) => {
            // The golden run decoded; a failure here cannot be
            // fault-induced, but classify it defensively.
            return InjectionOutcome {
                outcome: FaultOutcome::Detected(DetectorKind::Contract),
                injected: false,
                detection_latency: None,
                cycles: 0,
            };
        }
    };
    if let Some(map) = flow {
        sim.install_flow_checker(map.clone());
    }
    let run = sim.run();
    let injected_at = sim.fault_injected_at();
    let cycles = sim.cycle();
    let latency = injected_at.map(|at| cycles.saturating_sub(at));
    match run {
        Ok(result) => {
            let clean = sim.reg(Reg::R1) == golden.result_r1
                && result.halt_pc == golden.halt_pc
                && read_globals(image, &sim) == golden.globals;
            InjectionOutcome {
                outcome: if clean {
                    FaultOutcome::Masked
                } else {
                    FaultOutcome::SilentDataCorruption
                },
                injected: injected_at.is_some(),
                detection_latency: None,
                cycles,
            }
        }
        Err(e) => {
            let outcome = match e {
                SimError::MaxCyclesExceeded { .. } => FaultOutcome::Hang,
                SimError::IllegalControlFlow { .. } | SimError::LoopBoundExceeded { .. } => {
                    FaultOutcome::Detected(DetectorKind::ControlFlow)
                }
                _ => FaultOutcome::Detected(DetectorKind::Contract),
            };
            InjectionOutcome {
                outcome,
                injected: injected_at.is_some(),
                detection_latency: latency,
                cycles,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_asm::assemble;
    use patmos_trace::VecSink;

    fn loop_image() -> ObjectImage {
        assemble(
            "        .func main\n        li r2 = 5\n        li r1 = 0\nloop:\n        .loopbound 5 5\n        addi r1 = r1, 3\n        subi r2 = r2, 1\n        cmpineq p1 = r2, 0\n        (p1) br loop\n        nop\n        nop\n        halt\n",
        )
        .expect("assembles")
    }

    #[test]
    fn rng_is_deterministic_and_name_mixed() {
        let mut a = FaultRng::for_kernel(7, "crc");
        let mut b = FaultRng::for_kernel(7, "crc");
        let mut c = FaultRng::for_kernel(7, "fir");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z, "kernel names must decorrelate streams");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let space = FaultSpace {
            max_cycle: 1000,
            mem_ranges: vec![(0x1000, 0x1100)],
        };
        assert_eq!(
            FaultPlan::seeded(42, 8, &space),
            FaultPlan::seeded(42, 8, &space)
        );
        assert_ne!(
            FaultPlan::seeded(42, 8, &space),
            FaultPlan::seeded(43, 8, &space)
        );
    }

    #[test]
    fn empty_plan_is_bit_identical_to_uninjected_run() {
        let image = loop_image();
        // Reference engine both sides: an armed (but empty) plan forces
        // it, so the clean run must be pinned to the same engine.
        let mut plain = Simulator::new(
            &image,
            SimConfig {
                fast_path: false,
                ..SimConfig::default()
            },
        );
        let mut plain_sink = VecSink::new();
        let plain_result = plain.run_traced(&mut plain_sink).expect("runs");

        let mut armed = Simulator::new(
            &image,
            SimConfig {
                faults: Some(FaultPlan::default()),
                ..SimConfig::default()
            },
        );
        let mut armed_sink = VecSink::new();
        let armed_result = armed.run_traced(&mut armed_sink).expect("runs");

        assert_eq!(plain_result.stats, armed_result.stats);
        assert_eq!(plain_result.halt_pc, armed_result.halt_pc);
        assert_eq!(plain.reg(Reg::R1), armed.reg(Reg::R1));
        assert_eq!(plain_sink.events, armed_sink.events);
    }

    #[test]
    fn armed_plan_forces_reference_engine() {
        let image = loop_image();
        let mut sim = Simulator::new(
            &image,
            SimConfig {
                faults: Some(FaultPlan::default()),
                ..SimConfig::default()
            },
        );
        sim.run().expect("runs");
        assert_eq!(
            sim.host_stats().fast_bundles + sim.host_stats().pre_bundles,
            0,
            "armed runs must take the reference interpreter"
        );
    }

    #[test]
    fn register_flip_at_cycle_corrupts_result() {
        let image = loop_image();
        let cfg = SimConfig::default();
        let golden = golden_run(&image, &cfg).expect("golden");
        assert_eq!(golden.result_r1, 15);
        // Flip bit 4 of r1 after the loop has accumulated something.
        let outcome = run_injection(
            &image,
            &cfg,
            Injection {
                trigger: FaultTrigger::Cycle(golden.cycles - 2),
                target: FaultTarget::Register { reg: 1, bit: 4 },
            },
            None,
            &golden,
        );
        assert!(outcome.injected);
        assert_eq!(outcome.outcome, FaultOutcome::SilentDataCorruption);
    }

    #[test]
    fn flip_of_dead_register_is_masked() {
        let image = loop_image();
        let cfg = SimConfig::default();
        let golden = golden_run(&image, &cfg).expect("golden");
        let outcome = run_injection(
            &image,
            &cfg,
            Injection {
                trigger: FaultTrigger::Cycle(1),
                target: FaultTarget::Register { reg: 20, bit: 7 },
            },
            None,
            &golden,
        );
        assert!(outcome.injected);
        assert_eq!(outcome.outcome, FaultOutcome::Masked);
    }

    #[test]
    fn trigger_past_halt_never_fires() {
        let image = loop_image();
        let cfg = SimConfig::default();
        let golden = golden_run(&image, &cfg).expect("golden");
        let outcome = run_injection(
            &image,
            &cfg,
            Injection {
                trigger: FaultTrigger::Cycle(golden.cycles + 100),
                target: FaultTarget::Register { reg: 1, bit: 0 },
            },
            None,
            &golden,
        );
        assert!(!outcome.injected);
        assert_eq!(outcome.outcome, FaultOutcome::Masked);
    }

    #[test]
    fn counter_flip_hangs_or_is_caught_by_loop_cap() {
        let image = loop_image();
        let cfg = SimConfig::default();
        let golden = golden_run(&image, &cfg).expect("golden");
        // Flip a high bit of the loop counter (r2) mid-loop: the loop
        // now runs ~2^28 extra iterations. Without a flow map this is a
        // watchdog hang...
        let inj = Injection {
            trigger: FaultTrigger::Cycle(golden.cycles / 2),
            target: FaultTarget::Register { reg: 2, bit: 28 },
        };
        let plain = run_injection(&image, &cfg, inj, None, &golden);
        assert_eq!(plain.outcome, FaultOutcome::Hang);

        // ...and with the cap armed it is flagged within ~bound
        // iterations of the flip.
        let mut map = ControlFlowMap::new();
        // The loop header and back edge of loop_image(): measured from
        // the CFG by eye — header is the 3rd bundle (word 2), branch at
        // word 5 with 2 delay slots ending at word 7.
        map.add_loop_cap(LoopCap {
            header: 2,
            span_end: 7,
            max: 5,
        });
        let capped = run_injection(&image, &cfg, inj, Some(&map), &golden);
        assert_eq!(
            capped.outcome,
            FaultOutcome::Detected(DetectorKind::ControlFlow)
        );
        assert!(
            capped.detection_latency.expect("latency") < plain.cycles,
            "the cap must fire before the watchdog budget"
        );
    }

    #[test]
    fn retired_pc_trigger_fires_on_nth_retirement() {
        let image = loop_image();
        let cfg = SimConfig::default();
        let golden = golden_run(&image, &cfg).expect("golden");
        // Kill the loop counter on the 4th retirement of the header:
        // one early exit's worth of iterations go missing.
        let outcome = run_injection(
            &image,
            &cfg,
            Injection {
                trigger: FaultTrigger::RetiredPc {
                    pc: 2,
                    occurrence: 4,
                },
                target: FaultTarget::Register { reg: 2, bit: 0 },
            },
            None,
            &golden,
        );
        assert!(outcome.injected);
        assert_ne!(outcome.outcome, FaultOutcome::Masked);
    }

    #[test]
    fn cache_tag_upset_is_architecturally_masked() {
        let image = loop_image();
        let cfg = SimConfig::default();
        let golden = golden_run(&image, &cfg).expect("golden");
        let outcome = run_injection(
            &image,
            &cfg,
            Injection {
                trigger: FaultTrigger::Cycle(2),
                target: FaultTarget::CacheTags {
                    cache: CacheSel::Data,
                },
            },
            None,
            &golden,
        );
        assert!(outcome.injected);
        assert_eq!(
            outcome.outcome,
            FaultOutcome::Masked,
            "tag-only caches cannot corrupt values"
        );
    }
}
