//! The composability property of the TDMA CMP: a core's timing depends
//! only on its own program and its slot position — never on what the
//! other cores execute. This is the architectural property that makes
//! per-core WCET analysis possible (paper, Sections 1 and 3).

use patmos_asm::assemble;
use patmos_sim::{CmpSystem, SimConfig, Simulator};
use patmos_workloads::micro;

fn memory_bound_image() -> patmos_asm::ObjectImage {
    assemble(&micro::split_load_chain(16, 0)).expect("assembles")
}

fn compute_bound_image() -> patmos_asm::ObjectImage {
    assemble(
        "        .func main\n        .entry main\n        li r2 = 100\nl:\n        .loopbound 100 100\n        subi r2 = r2, 1\n        cmpineq p1 = r2, 0\n        (p1) br l\n        nop\n        nop\n        halt\n",
    )
    .expect("assembles")
}

#[test]
fn a_cores_time_is_independent_of_its_neighbours() {
    let mem_img = memory_bound_image();
    let cpu_img = compute_bound_image();
    let system = CmpSystem::new(SimConfig::default(), 4, 64);

    // Same image on all cores...
    let homogeneous = system.run_all(&mem_img).expect("runs");
    // ...and a mixed assignment with core 0 unchanged.
    let mixed = system
        .run_each(&[&mem_img, &cpu_img, &cpu_img, &cpu_img])
        .expect("runs");

    assert_eq!(
        homogeneous[0].result.stats.cycles, mixed[0].result.stats.cycles,
        "core 0's cycle count must not depend on what cores 1-3 run"
    );
}

#[test]
fn slot_position_fully_determines_core_timing() {
    let img = memory_bound_image();
    let system = CmpSystem::new(SimConfig::default(), 3, 64);
    let a = system.run_all(&img).expect("runs");
    let b = system.run_all(&img).expect("runs");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.result.stats.cycles, y.result.stats.cycles,
            "determinism per core"
        );
    }
}

#[test]
fn single_core_with_tdma_slot_is_never_faster_than_dedicated_port() {
    let img = memory_bound_image();
    let mut alone = Simulator::new(&img, SimConfig::default());
    let dedicated = alone.run().expect("runs").stats.cycles;
    for cores in [1u32, 2, 4] {
        let system = CmpSystem::new(SimConfig::default(), cores, 64);
        let results = system.run_all(&img).expect("runs");
        for r in results {
            assert!(
                r.result.stats.cycles >= dedicated,
                "TDMA core {} beat the dedicated port: {} < {}",
                r.core,
                r.result.stats.cycles,
                dedicated
            );
        }
    }
}

#[test]
fn compute_bound_code_barely_notices_tdma() {
    let img = compute_bound_image();
    let mut alone = Simulator::new(&img, SimConfig::default());
    let dedicated = alone.run().expect("runs").stats.cycles;
    let system = CmpSystem::new(SimConfig::default(), 8, 64);
    let results = system.run_all(&img).expect("runs");
    for r in results {
        // Only the cold method-cache fill goes through the arbiter.
        assert!(
            r.result.stats.cycles < dedicated + system.arbiter().period() * 2,
            "compute-bound core paid more than the fill alignment: {} vs {}",
            r.result.stats.cycles,
            dedicated
        );
    }
}
