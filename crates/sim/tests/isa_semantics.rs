//! Directed semantic tests of ISA corners on the cycle-accurate core:
//! sub-word accesses, special registers, predicate algebra, guarded
//! stores, and indirect calls.

use patmos_asm::assemble;
use patmos_isa::{Pred, Reg};
use patmos_sim::{SimConfig, SimError, Simulator};

fn run(src: &str) -> Simulator {
    let full = format!("        .func main\n        .entry main\n{src}        halt\n");
    let image = assemble(&full).unwrap_or_else(|e| panic!("assembly failed: {e}\n{full}"));
    let mut sim = Simulator::new(&image, SimConfig::default());
    sim.run()
        .unwrap_or_else(|e| panic!("run failed: {e}\n{full}"));
    sim
}

#[test]
fn byte_and_half_accesses_zero_extend() {
    let sim = run(
        "        lil r2 = 0x10000\n        lil r3 = 0x80818283\n        swd [r2 + 0] = r3\n        lbd r4 = [r2 + 0]\n        lbd r5 = [r2 + 3]\n        lhd r6 = [r2 + 0]\n        lhd r7 = [r2 + 1]\n        nop\n",
    );
    assert_eq!(sim.reg(Reg::R4), 0x83, "little-endian byte 0");
    assert_eq!(sim.reg(Reg::R5), 0x80, "byte 3");
    assert_eq!(sim.reg(Reg::R6), 0x8283, "half 0, zero-extended");
    assert_eq!(sim.reg(Reg::R7), 0x8081, "half offset scaled by 2");
}

#[test]
fn sub_word_stores_merge() {
    let sim = run(
        "        lil r2 = 0x10000\n        lil r3 = 0x11223344\n        swd [r2 + 0] = r3\n        li r4 = 0xAA\n        sbd [r2 + 1] = r4\n        lwd r5 = [r2 + 0]\n        nop\n",
    );
    assert_eq!(sim.reg(Reg::R5), 0x1122_AA44);
}

#[test]
fn liu_sets_upper_half_preserving_lower() {
    let sim = run("        li r1 = 0x1234\n        liu r1 = 0xABCD\n");
    assert_eq!(sim.reg(Reg::R1), 0xABCD_1234);
}

#[test]
fn li_sign_extends() {
    let sim = run("        li r1 = -2\n");
    assert_eq!(sim.reg(Reg::R1), 0xFFFF_FFFE);
}

#[test]
fn mul_high_word() {
    let sim = run(
        "        lil r1 = 0x10000\n        lil r2 = 0x10000\n        mul r1, r2\n        nop\n        mfs r3 = sl\n        mfs r4 = sh\n",
    );
    assert_eq!(sim.reg(Reg::R3), 0, "low 32 bits of 2^32");
    assert_eq!(sim.reg(Reg::R4), 1, "high 32 bits of 2^32");
}

#[test]
fn mul_is_signed() {
    let sim = run(
        "        li r1 = -3\n        li r2 = 4\n        mul r1, r2\n        nop\n        mfs r3 = sl\n        mfs r4 = sh\n",
    );
    assert_eq!(sim.reg(Reg::R3) as i32, -12);
    assert_eq!(sim.reg(Reg::R4), u32::MAX, "sign-extended high word");
}

#[test]
fn predicate_algebra() {
    let sim = run(
        "        cmpieq p1 = r0, 0\n        cmpineq p2 = r0, 0\n        por p3 = p1, p2\n        pand p4 = p1, p2\n        pxor p5 = p1, !p2\n",
    );
    assert!(sim.pred(Pred::P1), "0 == 0");
    assert!(!sim.pred(Pred::P2), "0 != 0 is false");
    assert!(sim.pred(Pred::P3), "true | false");
    assert!(!sim.pred(Pred::P4), "true & false");
    assert!(!sim.pred(Pred::P5), "true ^ !false = true ^ true");
}

#[test]
fn guarded_store_annuls() {
    let sim = run(
        "        lil r2 = 0x10000\n        li r3 = 77\n        swd [r2 + 0] = r3\n        cmpineq p1 = r0, 0\n        li r4 = 99\n        (p1) swd [r2 + 0] = r4\n        lwd r5 = [r2 + 0]\n        nop\n",
    );
    assert_eq!(sim.reg(Reg::R5), 77, "the guarded store must not land");
}

#[test]
fn mts_mfs_round_trip_special_registers() {
    let sim = run(
        "        li r1 = 123\n        mts sm = r1\n        mfs r2 = sm\n        li r3 = 456\n        mts sl = r3\n        mfs r4 = sl\n",
    );
    assert_eq!(sim.reg(Reg::R2), 123);
    assert_eq!(sim.reg(Reg::R4), 456);
}

#[test]
fn stack_pointers_visible_via_mfs() {
    let sim = run("        mfs r1 = st\n        sres 5\n        mfs r2 = st\n        mfs r3 = ss\n        sfree 5\n");
    let before = sim.reg(Reg::R1);
    let after = sim.reg(Reg::R2);
    assert_eq!(before - after, 20, "sres 5 moved st down 5 words");
    assert_eq!(sim.reg(Reg::R3), before, "nothing spilled: ss unchanged");
}

#[test]
fn callr_through_register() {
    let src = "        .func target\n        li r5 = 42\n        ret\n        nop\n        nop\n        .func main\n        .entry main\n        lil r10 = target\n        callr r10\n        nop\n        nop\n        halt\n";
    let image = assemble(src).expect("assembles");
    let mut sim = Simulator::new(&image, SimConfig::default());
    sim.run().expect("runs");
    assert_eq!(sim.reg(Reg::R5), 42);
}

#[test]
fn callr_to_non_function_is_an_error() {
    let src = "        .func main\n        .entry main\n        li r10 = 1\n        callr r10\n        nop\n        nop\n        halt\n";
    let image = assemble(src).expect("assembles");
    let mut sim = Simulator::new(&image, SimConfig::default());
    assert!(matches!(sim.run(), Err(SimError::NotAFunction { .. })));
}

#[test]
fn second_ldm_while_pending_is_an_error() {
    let src = "        .func main\n        .entry main\n        lil r2 = 0x20000\n        ldm [r2 + 0]\n        ldm [r2 + 1]\n        wres r1\n        halt\n";
    let image = assemble(src).expect("assembles");
    let mut sim = Simulator::new(&image, SimConfig::default());
    assert!(matches!(sim.run(), Err(SimError::LoadStillPending { .. })));
}

#[test]
fn wres_without_ldm_is_an_error_in_strict_mode() {
    let src = "        .func main\n        .entry main\n        wres r1\n        halt\n";
    let image = assemble(src).expect("assembles");
    let mut sim = Simulator::new(&image, SimConfig::default());
    assert!(matches!(sim.run(), Err(SimError::NoPendingLoad { .. })));
}

#[test]
fn non_strict_mode_tolerates_wres_without_ldm() {
    let src = "        .func main\n        .entry main\n        li r2 = 5\n        mts sm = r2\n        wres r1\n        halt\n";
    let image = assemble(src).expect("assembles");
    let cfg = SimConfig {
        strict: false,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&image, cfg);
    sim.run().expect("non-strict run succeeds");
    assert_eq!(sim.reg(Reg::R1), 5, "wres falls back to sm");
}

#[test]
fn write_buffer_backpressure_is_counted() {
    // Back-to-back posted stores: the second waits for the first drain.
    let src = "        .func main\n        .entry main\n        lil r2 = 0x20000\n        li r3 = 1\n        stm [r2 + 0] = r3\n        stm [r2 + 1] = r3\n        stm [r2 + 2] = r3\n        halt\n";
    let image = assemble(src).expect("assembles");
    let mut sim = Simulator::new(&image, SimConfig::default());
    sim.run().expect("runs");
    assert!(sim.stats().stalls.write_buffer > 0);
    assert_eq!(sim.memory().read_word(0x20004), 1);
}

#[test]
fn r0_and_p0_are_immutable_in_programs() {
    let sim = run("        li r0 = 77\n        cmpineq p0 = r0, 0\n        add r1 = r0, r0\n");
    assert_eq!(sim.reg(Reg::R1), 0, "r0 stayed zero");
    assert!(sim.pred(Pred::P0), "p0 stayed true");
}

#[test]
fn spm_and_main_memory_are_distinct_address_spaces() {
    let sim = run(
        "        li r2 = 32\n        li r3 = 1111\n        swl [r2 + 0] = r3\n        li r4 = 2222\n        lil r5 = 0x10020\n        swd [r5 + 0] = r4\n        lwl r6 = [r2 + 0]\n        nop\n",
    );
    assert_eq!(sim.reg(Reg::R6), 1111);
    assert_eq!(sim.scratchpad().read_word(32), 1111);
    assert_eq!(sim.memory().read_word(0x10020), 2222);
}
