//! Mid-end optimizer for the PatC toolchain.
//!
//! Runs classical scalar optimizations over the shared virtual-register
//! LIR ([`patmos_lir`]), between code generation and register
//! allocation:
//!
//! ```text
//! codegen ──VModule──▶ patmos_opt::optimize ──VModule──▶ regalloc
//! ```
//!
//! The level-1 pipeline iterates five passes to a fixed point:
//!
//! 1. **constant folding & propagation** — immediate loads flow into
//!    ALU/compare operations; known results fold to immediate loads;
//! 2. **strength reduction** — `mul`/`mfs sl` pairs by powers of two
//!    become single shifts;
//! 3. **common-subexpression elimination** — repeated pure computations
//!    (notably the address arithmetic of array subscripts) and
//!    redundant loads collapse to copies, with word-sized
//!    store-to-load forwarding;
//! 4. **copy propagation** — coalesces the generator's
//!    temporary-then-assign pattern and forwards copy sources;
//! 5. **dead-code elimination** — liveness-driven removal of pure
//!    instructions whose results are never read.
//!
//! Level 2 ([`OptConfig::level`]) makes the pipeline *loop-aware*, over
//! the dominator-tree and natural-loop-forest analyses of
//! [`patmos_lir`]:
//!
//! * a size-budgeted **function inliner** runs first, on raw generator
//!   output (the `inline` module documents the call-protocol pattern
//!   it splices);
//! * **loop-invariant code motion** joins the fixpoint, hoisting pure
//!   computations (symbol loads, constants, invariant address
//!   arithmetic, loads from unwritten areas) into loop preheaders;
//! * small **constant-trip-count loops unroll fully** between fixpoint
//!   reruns, handing the scalar passes straight-line code in which the
//!   induction variable folds to per-iteration constants.
//!
//! Level 3 extends the unroll step with **partial unrolling** for the
//! loops the full scheme cannot touch: an over-budget constant-trip
//! loop replicates its body by the largest *paying* divisor of the
//! trip count (the header test stays exact, the `.loopbound`
//! tightens), and a runtime-trip straight-line loop splits into a
//! factor-4/2 main loop guarded by `K − (U−1)·S` plus a scalar
//! remainder loop. A cost model gates both schemes on what
//! replication actually buys against the cold method-cache fill of
//! the added code (see the `unroll` module).
//!
//! Every pass is *guard-aware*: definitions under a non-always
//! predicate merge with the old value and therefore block propagation,
//! while their operands may still be rewritten. Single-path code stays
//! single-path — no pass introduces or removes control flow, and the
//! shape-stable pipeline used by single-path mode excludes unrolling
//! (trip counts are literal values) while keeping inlining and LICM,
//! whose decisions read only code shape.
//!
//! # Example
//!
//! ```
//! use patmos_lir::{VInst, VItem, VModule, VOp, VReg};
//!
//! let v = VReg::new;
//! let mut module = VModule {
//!     data_lines: Vec::new(),
//!     entry: "main".into(),
//!     items: vec![
//!         VItem::FuncStart("main".into()),
//!         VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 6 })),
//!         VItem::Inst(VInst::always(VOp::AluI {
//!             op: patmos_isa::AluOp::Shl,
//!             rd: v(2),
//!             rs1: v(1),
//!             imm: 3,
//!         })),
//!         VItem::Inst(VInst::always(VOp::CopyToPhys {
//!             dst: patmos_isa::Reg::R1,
//!             src: v(2),
//!         })),
//!         VItem::Inst(VInst::always(VOp::Halt)),
//!     ],
//! };
//! let report = patmos_opt::optimize(&mut module);
//! // `6 << 3` folds to one immediate load of 48.
//! assert_eq!(report.insts_after, 3);
//! ```
//!
//! # Example: the loop-aware level
//!
//! A counted loop summing `0..5` flattens completely at level 2 — the
//! unroller copies the body, constant propagation rewrites the
//! induction variable per copy, and the whole computation folds:
//!
//! ```
//! use patmos_isa::{AluOp, CmpOp, Guard, Pred};
//! use patmos_lir::{VInst, VItem, VModule, VOp, VReg};
//!
//! let v = VReg::new;
//! let mut module = VModule {
//!     data_lines: Vec::new(),
//!     entry: "main".into(),
//!     items: vec![
//!         VItem::FuncStart("main".into()),
//!         VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 0 })),
//!         VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(2), imm: 0 })),
//!         VItem::LoopBound { min: 1, max: 6 },
//!         VItem::Label("main_head1".into()),
//!         VItem::Inst(VInst::always(VOp::CmpI {
//!             op: CmpOp::Lt,
//!             pd: Pred::P6,
//!             rs1: v(1),
//!             imm: 5,
//!         })),
//!         VItem::Inst(VInst::new(
//!             Guard::unless(Pred::P6),
//!             VOp::BrLabel("main_exit2".into()),
//!         )),
//!         VItem::Inst(VInst::always(VOp::AluR {
//!             op: AluOp::Add,
//!             rd: v(2),
//!             rs1: v(2),
//!             rs2: v(1),
//!         })),
//!         VItem::Inst(VInst::always(VOp::AluI {
//!             op: AluOp::Add,
//!             rd: v(1),
//!             rs1: v(1),
//!             imm: 1,
//!         })),
//!         VItem::Inst(VInst::always(VOp::BrLabel("main_head1".into()))),
//!         VItem::Label("main_exit2".into()),
//!         VItem::Inst(VInst::always(VOp::CopyToPhys {
//!             dst: patmos_isa::Reg::R1,
//!             src: v(2),
//!         })),
//!         VItem::Inst(VInst::always(VOp::Halt)),
//!     ],
//! };
//! let config = patmos_opt::OptConfig {
//!     level: 2,
//!     ..patmos_opt::OptConfig::default()
//! };
//! patmos_opt::optimize_with(&mut module, config);
//! // No control flow left: `0+1+2+3+4` became `li 10` + the ABI copy.
//! assert!(!module.items.iter().any(|i| matches!(
//!     i,
//!     VItem::Label(_)
//!         | VItem::LoopBound { .. }
//!         | VItem::Inst(VInst { op: VOp::BrLabel(_), .. })
//! )));
//! ```

mod constprop;
mod copyprop;
mod cse;
mod dce;
mod inline;
mod licm;
mod strength;
mod unroll;
mod util;

use patmos_lir::{Remark, VItem, VModule};

/// Upper bound on fixpoint rounds; real modules converge in two or
/// three, so hitting this means a pass pair is oscillating.
const MAX_ROUNDS: u32 = 10;

/// One pass application that changed the module, captured for
/// `--dump-opt`.
#[derive(Debug, Clone)]
pub struct PassDump {
    /// 1-based fixpoint round.
    pub round: u32,
    /// Pass name.
    pub pass: &'static str,
    /// Rendered LIR before the pass.
    pub before: String,
    /// Rendered LIR after the pass.
    pub after: String,
}

/// How the unroller rewrote one loop (for `--dump-pipeline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnrollKind {
    /// The loop was replaced by straight-line body copies.
    Full,
    /// The body was replicated by a factor dividing the constant trip
    /// count; the loop survives with a tightened bound.
    Divisor,
    /// A runtime-trip loop was split into a factor-wide main loop and
    /// a scalar remainder loop.
    Remainder,
}

impl std::fmt::Display for UnrollKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UnrollKind::Full => "full",
            UnrollKind::Divisor => "divisor",
            UnrollKind::Remainder => "remainder",
        })
    }
}

/// One loop rewritten by the unroller.
#[derive(Debug, Clone)]
pub struct LoopUnroll {
    /// The loop's header label.
    pub label: String,
    /// The scheme applied.
    pub kind: UnrollKind,
    /// Body copies per iteration of the surviving loop (equal to the
    /// trip count for [`UnrollKind::Full`]).
    pub factor: u32,
    /// The constant trip count, when known.
    pub trips: Option<u32>,
}

/// One call site the inliner spliced (levels 2+). The profiler's
/// source map uses these records to follow a callee's loop labels into
/// the caller, where they now carry the `il{serial}_` prefix.
#[derive(Debug, Clone)]
pub struct InlineSplice {
    /// The splice serial: the callee's labels were renamed to
    /// `il{serial}_{label}`.
    pub serial: usize,
    /// The function whose body was duplicated.
    pub callee: String,
    /// The function the body landed in.
    pub caller: String,
}

/// Outcome of one optimization run.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// Fixpoint rounds executed (including the final no-change round).
    pub rounds: u32,
    /// Instruction count before optimization.
    pub insts_before: usize,
    /// Instruction count after optimization.
    pub insts_after: usize,
    /// Per-pass before/after snapshots (empty unless tracing).
    pub dumps: Vec<PassDump>,
    /// Loops the unroller rewrote (levels 2+), in application order.
    pub unrolls: Vec<LoopUnroll>,
    /// Call sites the inliner spliced (levels 2+), in splice order.
    pub inlines: Vec<InlineSplice>,
    /// Structured decisions (applied and refused) from the inliner,
    /// LICM and the unroller, for `--remarks`.
    pub remarks: Vec<Remark>,
}

impl OptReport {
    /// Records `remark` unless an identical one is already present —
    /// the unroll/fixpoint loop revisits refused loops every round, and
    /// a refusal repeated verbatim carries no new information.
    fn push_remark(&mut self, remark: Remark) {
        if !self.remarks.contains(&remark) {
            self.remarks.push(remark);
        }
    }
}

fn count_insts(module: &VModule) -> usize {
    module
        .items
        .iter()
        .filter(|i| matches!(i, VItem::Inst(_)))
        .count()
}

/// A pass entry point: rewrites the module, reports whether it changed.
/// The report is for remark emission; the scalar passes ignore it.
type Pass = fn(&mut VModule, &mut OptReport) -> bool;

// The scalar passes make no remark-worthy decisions; adapt their plain
// signatures to the table type.
fn constprop_pass(m: &mut VModule, _: &mut OptReport) -> bool {
    constprop::run(m)
}
fn strength_pass(m: &mut VModule, _: &mut OptReport) -> bool {
    strength::run(m)
}
fn cse_pass(m: &mut VModule, _: &mut OptReport) -> bool {
    cse::run(m)
}
fn cse_shape_stable_pass(m: &mut VModule, _: &mut OptReport) -> bool {
    cse::run_shape_stable(m)
}
fn copyprop_pass(m: &mut VModule, _: &mut OptReport) -> bool {
    copyprop::run(m)
}
fn copyprop_global_pass(m: &mut VModule, _: &mut OptReport) -> bool {
    copyprop::run_global(m)
}
fn dce_pass(m: &mut VModule, _: &mut OptReport) -> bool {
    dce::run(m)
}

/// How to run the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct OptConfig {
    /// Restrict the pipeline to *shape-stable* rewrites: passes whose
    /// effect cannot depend on the value of any literal, so two
    /// compilations differing only in a constant emit identically
    /// shaped code. Required by single-path mode, whose contract is
    /// that execution time does not depend on input values — including
    /// values baked in as literals. Drops constant folding, strength
    /// reduction, immediate-keyed CSE and loop unrolling (a trip count
    /// *is* a literal); keeps structural CSE, copy propagation, DCE,
    /// and — at level 2 — inlining and loop-invariant code motion,
    /// whose decisions read only code shape.
    pub shape_stable: bool,
    /// Capture a per-pass before/after snapshot for every pass that
    /// changed the module.
    pub trace: bool,
    /// Pipeline level. `1` runs the scalar fixpoint; `2` additionally
    /// inlines small non-recursive calls first, hoists loop-invariant
    /// code inside the fixpoint, and fully unrolls small
    /// constant-trip-count loops between fixpoint reruns. `3` extends
    /// the unroll step with *partial* unrolling: over-budget
    /// constant-trip loops replicate their body by the largest divisor
    /// of the trip count that fits the budget, and runtime-trip
    /// straight-line loops get a factor-4/2 main loop plus a scalar
    /// remainder loop. Levels beyond 3 behave like 3.
    pub level: u8,
    /// The register-pressure estimate the unroller checks before
    /// replicating a loop body, provided by the register-allocation
    /// policy (see
    /// [`patmos_regalloc::Constraints::pressure_estimate`]). The
    /// default is the linear-scan distinct-register proxy.
    pub pressure: patmos_regalloc::PressureEstimate,
    /// A software pipeliner runs after this pipeline (`sched_level` 2):
    /// the partial-unroll schemes leave modulo-schedulable loops —
    /// straight-line memory loops with enough trips to fill a pipeline
    /// — alone, because replication turns them into shapes the
    /// pipeliner can no longer overlap (a replicated body's serial
    /// memory chain pushes `II` up to the plain iteration cost), and a
    /// pipelined kernel both runs faster and gives the WCET analysis a
    /// structured `.pipeloop` shape to charge exactly.
    pub defer_pipelineable: bool,
}

impl Default for OptConfig {
    /// Level 1, value-dependent rewrites allowed, no tracing.
    fn default() -> OptConfig {
        OptConfig {
            shape_stable: false,
            trace: false,
            level: 1,
            pressure: patmos_regalloc::PressureEstimate::default(),
            defer_pipelineable: false,
        }
    }
}

/// Upper bound on unroll→fixpoint reruns: each round can only unroll
/// what the previous round's folding turned into an innermost counted
/// loop, and nests in practice flatten within two.
const MAX_UNROLL_ROUNDS: u32 = 3;

/// The scalar (and, at level 2, LICM) fixpoint.
fn run_fixpoint(
    module: &mut VModule,
    config: OptConfig,
    report: &mut OptReport,
    passes: &[(&'static str, Pass)],
) {
    // Round numbering continues across the level-2 unroll reruns, so
    // `OptReport::rounds` counts the whole pipeline and a traced dump's
    // round is globally unique.
    let base = report.rounds;
    for round in base + 1..=base + MAX_ROUNDS {
        report.rounds = round;
        let mut changed = false;
        for &(name, pass) in passes {
            let before = config.trace.then(|| module.render());
            if pass(module, report) {
                changed = true;
                if let Some(before) = before {
                    report.dumps.push(PassDump {
                        round,
                        pass: name,
                        before,
                        after: module.render(),
                    });
                }
            }
        }
        if !changed {
            break;
        }
    }
}

fn run_pipeline(module: &mut VModule, config: OptConfig) -> OptReport {
    let full: &[(&'static str, Pass)] = &[
        ("const-prop", constprop_pass),
        ("strength-reduce", strength_pass),
        ("cse", cse_pass),
        ("copy-prop", copyprop_pass),
        ("dce", dce_pass),
    ];
    let full_loop: &[(&'static str, Pass)] = &[
        ("const-prop", constprop_pass),
        ("strength-reduce", strength_pass),
        ("cse", cse_pass),
        ("licm", licm::run),
        ("copy-prop", copyprop_pass),
        ("copy-prop-global", copyprop_global_pass),
        ("dce", dce_pass),
    ];
    let shape_stable: &[(&'static str, Pass)] = &[
        ("cse", cse_shape_stable_pass),
        ("copy-prop", copyprop_pass),
        ("dce", dce_pass),
    ];
    let shape_stable_loop: &[(&'static str, Pass)] = &[
        ("cse", cse_shape_stable_pass),
        ("licm", licm::run),
        ("copy-prop", copyprop_pass),
        ("copy-prop-global", copyprop_global_pass),
        ("dce", dce_pass),
    ];
    let loop_aware = config.level >= 2;
    let passes = match (config.shape_stable, loop_aware) {
        (false, false) => full,
        (false, true) => full_loop,
        (true, false) => shape_stable,
        (true, true) => shape_stable_loop,
    };
    let mut report = OptReport {
        insts_before: count_insts(module),
        ..OptReport::default()
    };

    if loop_aware {
        let before = config.trace.then(|| module.render());
        if inline::run(module, &mut report) {
            if let Some(before) = before {
                report.dumps.push(PassDump {
                    round: 0,
                    pass: "inline",
                    before,
                    after: module.render(),
                });
            }
        }
    }

    run_fixpoint(module, config, &mut report, passes);

    if loop_aware && !config.shape_stable {
        let partial = config.level >= 3;
        for _ in 0..MAX_UNROLL_ROUNDS {
            let before = config.trace.then(|| module.render());
            if !unroll::run(
                module,
                partial,
                config.defer_pipelineable,
                config.pressure,
                &mut report,
            ) {
                break;
            }
            // The unroll application is a round of its own; the next
            // fixpoint continues counting from it.
            report.rounds += 1;
            if let Some(before) = before {
                report.dumps.push(PassDump {
                    round: report.rounds,
                    pass: "unroll",
                    before,
                    after: module.render(),
                });
            }
            run_fixpoint(module, config, &mut report, passes);
        }
    }

    report.insts_after = count_insts(module);
    report
}

/// Runs the level-1 pipeline to a fixed point under `config`.
pub fn optimize_with(module: &mut VModule, config: OptConfig) -> OptReport {
    run_pipeline(module, config)
}

/// Runs the full level-1 pipeline to a fixed point.
pub fn optimize(module: &mut VModule) -> OptReport {
    run_pipeline(module, OptConfig::default())
}

/// Like [`optimize`], additionally capturing a per-pass before/after
/// snapshot for every pass that changed the module (`--dump-opt`).
pub fn optimize_traced(module: &mut VModule) -> OptReport {
    run_pipeline(
        module,
        OptConfig {
            trace: true,
            ..OptConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::{AluOp, Reg, SpecialReg};
    use patmos_lir::{VInst, VOp, VReg};

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    /// The code shape the generator emits for `return (a[1] + a[1]) * 4`
    /// with `a[1]` spelled twice: two full address computations, a
    /// multiply by a constant, and a chain of single-use temporaries.
    fn redundant_module() -> VModule {
        let mut items = vec![VItem::FuncStart("main".into())];
        for (base, scaled, addr, val) in [(1u32, 2, 3, 4), (5, 6, 7, 8)] {
            items.push(VItem::Inst(VInst::always(VOp::LilSym {
                rd: v(base),
                sym: "a".into(),
            })));
            items.push(VItem::Inst(VInst::always(VOp::LoadImmLow {
                rd: v(20 + base),
                imm: 1,
            })));
            items.push(VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Shl,
                rd: v(scaled),
                rs1: v(20 + base),
                imm: 2,
            })));
            items.push(VItem::Inst(VInst::always(VOp::AluR {
                op: AluOp::Add,
                rd: v(addr),
                rs1: v(base),
                rs2: v(scaled),
            })));
            items.push(VItem::Inst(VInst::always(VOp::Load {
                area: patmos_isa::MemArea::Static,
                size: patmos_isa::AccessSize::Word,
                rd: v(val),
                ra: v(addr),
                offset: 0,
            })));
        }
        items.push(VItem::Inst(VInst::always(VOp::AluR {
            op: AluOp::Add,
            rd: v(9),
            rs1: v(4),
            rs2: v(8),
        })));
        items.push(VItem::Inst(VInst::always(VOp::LoadImmLow {
            rd: v(10),
            imm: 4,
        })));
        items.push(VItem::Inst(VInst::always(VOp::Mul {
            rs1: v(9),
            rs2: v(10),
        })));
        items.push(VItem::Inst(VInst::always(VOp::Mfs {
            rd: v(11),
            ss: SpecialReg::Sl,
        })));
        items.push(VItem::Inst(VInst::always(VOp::CopyToPhys {
            dst: Reg::R1,
            src: v(11),
        })));
        items.push(VItem::Inst(VInst::always(VOp::Halt)));
        VModule {
            data_lines: Vec::new(),
            items,
            entry: "main".into(),
        }
    }

    #[test]
    fn pipeline_reaches_a_fixed_point_and_shrinks_redundancy() {
        let mut m = redundant_module();
        let report = optimize(&mut m);
        assert!(report.rounds < MAX_ROUNDS, "must converge");
        // 16 instructions down to: lil, li 1, shl, add, load (one address
        // computation + one load survive), add of the two loaded values
        // (now the same register), shl by 2, mov, halt.
        assert!(
            report.insts_after <= 9,
            "expected ≤ 9 instructions, got {}:\n{}",
            report.insts_after,
            m.render()
        );
        // The multiply is strength-reduced away.
        assert!(
            !m.items.iter().any(|i| matches!(
                i,
                VItem::Inst(VInst {
                    op: VOp::Mul { .. },
                    ..
                })
            )),
            "{}",
            m.render()
        );
        // The second load collapsed onto the first.
        let loads = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::Load { .. },
                        ..
                    })
                )
            })
            .count();
        assert_eq!(loads, 1, "{}", m.render());
    }

    #[test]
    fn duplicate_constants_converge_instead_of_oscillating() {
        // CSE rewrites the duplicate `li` into a copy; const-prop must
        // NOT fold that copy back into a `li`, or the pair ping-pongs
        // until the round cap. Two live uses keep both values alive.
        let mut m = VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 0 })),
                VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(2), imm: 0 })),
                VItem::Inst(VInst::always(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: v(1),
                })),
                VItem::Inst(VInst::always(VOp::CopyToPhys {
                    dst: Reg::R3,
                    src: v(2),
                })),
                VItem::Inst(VInst::always(VOp::Halt)),
            ],
        };
        let report = optimize(&mut m);
        assert!(
            report.rounds < MAX_ROUNDS,
            "pipeline oscillated:\n{}",
            m.render()
        );
    }

    #[test]
    fn trace_captures_only_changing_passes() {
        let mut m = redundant_module();
        let report = optimize_traced(&mut m);
        assert!(!report.dumps.is_empty());
        for dump in &report.dumps {
            assert_ne!(dump.before, dump.after, "{} captured a no-op", dump.pass);
        }
        // A second run is a no-op and captures nothing.
        let report2 = optimize_traced(&mut m);
        assert!(report2.dumps.is_empty());
        assert_eq!(report2.rounds, 1);
    }
}
