//! Dead-code elimination, driven by the shared liveness dataflow.
//!
//! Walks each block backwards from its live-out set and deletes pure
//! instructions whose result is dead at that point — the constant
//! re-materialisations, address temporaries, and copies the other
//! passes leave behind. Multiplies, compares, predicate ops, stores,
//! ABI copies and control flow are never touched; loads are (the PatC
//! memory areas cannot fault, so a dead load only warms a cache).

use std::collections::BTreeSet;

use patmos_lir::VModule;

use crate::util;

/// Runs the pass over every function of the module.
pub(crate) fn run(module: &mut VModule) -> bool {
    let mut marked: BTreeSet<usize> = BTreeSet::new();
    for func in &patmos_lir::split_functions(&module.items) {
        let cfg = patmos_lir::build_vcfg(func, &module.items);
        let live_res = patmos_lir::analyze(func, &cfg);
        for (bi, block) in cfg.blocks.iter().enumerate() {
            let mut live = live_res.block_live_out[bi].clone();
            for pos in (block.first..block.end).rev() {
                let (item_idx, inst) = (func.insts[pos].0, func.insts[pos].1);
                let def = inst.op.def();
                if let Some(d) = def {
                    if inst.op.is_pure() && !live.contains(&d) {
                        marked.insert(item_idx);
                        continue;
                    }
                    if inst.guard.is_always() {
                        live.remove(&d);
                    }
                }
                for u in inst.op.uses().into_iter().flatten() {
                    live.insert(u);
                }
                if let Some(d) = def {
                    if !inst.guard.is_always() {
                        // The old value flows through an annulled write.
                        live.insert(d);
                    }
                }
            }
        }
    }
    let changed = !marked.is_empty();
    util::remove_marked(&mut module.items, &marked);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::{AluOp, Guard, Pred, Reg};
    use patmos_lir::{VInst, VItem, VOp, VReg};

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    #[test]
    fn dead_chain_is_removed_transitively_over_rounds() {
        let mut m = VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 1 })),
                VItem::Inst(VInst::always(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(2),
                    rs1: v(1),
                    imm: 2,
                })),
                VItem::Inst(VInst::always(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: VReg::ZERO,
                })),
                VItem::Inst(VInst::always(VOp::Halt)),
            ],
        };
        // One backward walk removes the whole dead chain: v2's death
        // is seen before v1's definition is reached.
        assert!(run(&mut m));
        assert_eq!(m.items.len(), 3);
        assert!(!run(&mut m));
    }

    #[test]
    fn guarded_write_to_live_value_survives() {
        let mut m = VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 0 })),
                VItem::Inst(VInst::new(
                    Guard::when(Pred::P1),
                    VOp::LoadImmLow { rd: v(1), imm: 1 },
                )),
                VItem::Inst(VInst::always(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: v(1),
                })),
                VItem::Inst(VInst::always(VOp::Halt)),
            ],
        };
        assert!(!run(&mut m), "both writes feed the live result");
        assert_eq!(m.items.len(), 5);
    }

    #[test]
    fn dead_guarded_bool_materialisation_is_removed() {
        let mut m = VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 0 })),
                VItem::Inst(VInst::new(
                    Guard::when(Pred::P1),
                    VOp::LoadImmLow { rd: v(1), imm: 1 },
                )),
                VItem::Inst(VInst::always(VOp::Halt)),
            ],
        };
        assert!(run(&mut m));
        assert_eq!(m.items.len(), 2, "both writes of the dead bool go");
    }
}
