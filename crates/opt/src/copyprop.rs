//! Copy propagation and copy coalescing (block-local).
//!
//! Two cooperating rewrites over the canonical copy `add rd = rs, r0`:
//!
//! * **coalescing** — when a pure definition is immediately followed by
//!   an unconditional copy of its result, and the copy is that result's
//!   only use anywhere in the function, the definition writes the copy's
//!   destination directly and the copy disappears. This deletes the
//!   temporary-then-assign pattern the tree-walking code generator emits
//!   for every unguarded assignment;
//! * **forwarding** — uses of a copied register are rewritten to the
//!   copy's source while both stay unredefined in the block, turning the
//!   copy dead for the DCE pass.
//!
//! Guarded copies take part in neither (a guarded write merges two
//! values), but operands of guarded instructions are still forwarded —
//! the source register holds the same value whether or not the guarded
//! instruction is annulled.

use std::collections::{BTreeSet, HashMap};

use patmos_lir::{VItem, VModule, VReg};

use crate::util::{self, as_copy};

/// Coalesces `def src; copy dst = src` pairs with a single-use `src`.
fn coalesce(module: &mut VModule) -> bool {
    let mut marked: BTreeSet<usize> = BTreeSet::new();
    for fb in util::function_blocks(&module.items) {
        // Total use counts per virtual register in this function; a
        // guarded definition reads its destination (merge semantics).
        let mut use_count: HashMap<VReg, usize> = HashMap::new();
        for item in &module.items[fb.range.clone()] {
            let VItem::Inst(inst) = item else { continue };
            for u in inst.op.uses().into_iter().flatten() {
                *use_count.entry(u).or_insert(0) += 1;
            }
            if !inst.guard.is_always() {
                if let Some(d) = inst.op.def() {
                    *use_count.entry(d).or_insert(0) += 1;
                }
            }
        }
        for block in fb.blocks {
            for pair in block.windows(2) {
                let (i, j) = (pair[0], pair[1]);
                if marked.contains(&i) || marked.contains(&j) {
                    continue;
                }
                let (VItem::Inst(def_inst), VItem::Inst(copy_inst)) =
                    (&module.items[i], &module.items[j])
                else {
                    unreachable!("blocks contain instruction indices only");
                };
                let Some((dst, src)) = as_copy(&copy_inst.op) else {
                    continue;
                };
                if !copy_inst.guard.is_always()
                    || !def_inst.guard.is_always()
                    || src.is_zero()
                    || dst == src
                    || def_inst.op.def() != Some(src)
                    || !def_inst.op.is_pure()
                    || use_count.get(&src).copied().unwrap_or(0) != 1
                {
                    continue;
                }
                let VItem::Inst(def_inst) = &mut module.items[i] else {
                    unreachable!();
                };
                assert!(def_inst.op.set_def(dst), "pure defs are redirectable");
                marked.insert(j);
            }
        }
    }
    let changed = !marked.is_empty();
    util::remove_marked(&mut module.items, &marked);
    changed
}

/// Forwards copy sources into later uses; drops no-op copies.
fn forward(module: &mut VModule) -> bool {
    let mut changed = false;
    let mut marked: BTreeSet<usize> = BTreeSet::new();
    for fb in util::function_blocks(&module.items) {
        for block in fb.blocks {
            // dst -> fully resolved source.
            let mut copies: HashMap<VReg, VReg> = HashMap::new();
            for idx in block {
                let VItem::Inst(inst) = &mut module.items[idx] else {
                    unreachable!("blocks contain instruction indices only");
                };
                inst.op.map_uses(|u| {
                    if let Some(&s) = copies.get(&u) {
                        changed = true;
                        s
                    } else {
                        u
                    }
                });
                if inst.guard.is_always() {
                    if let Some((dst, src)) = as_copy(&inst.op) {
                        if dst == src {
                            marked.insert(idx);
                            changed = true;
                        } else {
                            copies.retain(|_, s| *s != dst);
                            copies.insert(dst, src);
                        }
                        continue;
                    }
                }
                if let Some(d) = inst.op.def() {
                    copies.remove(&d);
                    copies.retain(|_, s| *s != d);
                }
            }
        }
    }
    util::remove_marked(&mut module.items, &marked);
    changed
}

/// Runs coalescing then forwarding.
pub(crate) fn run(module: &mut VModule) -> bool {
    let coalesced = coalesce(module);
    forward(module) || coalesced
}

/// Function-global copy forwarding over *single-definition* registers
/// (an `opt_level` 2 pass).
///
/// The block-local [`forward`] cannot chase a copy whose uses live in
/// another block — exactly what LICM leaves behind when it hoists a
/// CSE-made copy into a preheader while the uses stay in the loop.
/// When `dst = src` is the **only** definition of `dst` in the
/// function, and `src` is the zero alias or itself defined exactly
/// once and unconditionally, every use of `dst` anywhere reads the one
/// value `src` ever holds, so the rewrite `dst → src` is sound in
/// every block. Copy chains resolve transitively; the dead copies are
/// left for DCE.
pub(crate) fn run_global(module: &mut VModule) -> bool {
    // Phase 1 (items borrowed): per function, the resolved rewrite map
    // and the item indices to visit.
    let mut plans: Vec<(Vec<usize>, HashMap<VReg, VReg>)> = Vec::new();
    for func in &patmos_lir::split_functions(&module.items) {
        // Definition counts; a guarded def still counts (the merge
        // makes the register multi-valued).
        let mut defs: HashMap<VReg, (usize, bool)> = HashMap::new();
        for (_, inst) in &func.insts {
            if let Some(d) = inst.op.def() {
                let e = defs.entry(d).or_insert((0, true));
                e.0 += 1;
                e.1 &= inst.guard.is_always();
            }
        }
        let single_always = |v: VReg| v.is_zero() || defs.get(&v) == Some(&(1, true));

        let mut rewrite: HashMap<VReg, VReg> = HashMap::new();
        for (_, inst) in &func.insts {
            if !inst.guard.is_always() {
                continue;
            }
            if let Some((dst, src)) = as_copy(&inst.op) {
                if dst != src && defs.get(&dst) == Some(&(1, true)) && single_always(src) {
                    rewrite.insert(dst, src);
                }
            }
        }
        if rewrite.is_empty() {
            continue;
        }
        // Resolve chains (`c → b → a` becomes `c → a`).
        let resolve = |mut v: VReg| {
            let mut hops = 0;
            while let Some(&next) = rewrite.get(&v) {
                v = next;
                hops += 1;
                if hops > rewrite.len() {
                    break; // self-referential degenerate chain
                }
            }
            v
        };
        let resolved: HashMap<VReg, VReg> = rewrite.keys().map(|&d| (d, resolve(d))).collect();
        plans.push((func.insts.iter().map(|&(idx, _)| idx).collect(), resolved));
    }

    // Phase 2: apply.
    let mut changed = false;
    for (item_indices, resolved) in plans {
        for idx in item_indices {
            let VItem::Inst(inst) = &mut module.items[idx] else {
                unreachable!("insts index instruction items");
            };
            // Keep the defining copies themselves intact: rewriting a
            // copy's source is fine, but `dst = dst` must not appear.
            let own_def = inst.op.def();
            inst.op.map_uses(|u| {
                let r = resolved.get(&u).copied().unwrap_or(u);
                if r != u && Some(r) != own_def {
                    changed = true;
                    r
                } else {
                    u
                }
            });
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::AluOp;
    use patmos_lir::{VInst, VOp};

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    fn module(items: Vec<VItem>) -> VModule {
        VModule {
            data_lines: Vec::new(),
            items,
            entry: "main".into(),
        }
    }

    #[test]
    fn coalesces_single_use_temporary() {
        // t = s + 1; s = t  ==>  s = s + 1
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Add,
                rd: v(9),
                rs1: v(1),
                imm: 1,
            })),
            VItem::Inst(VInst::always(util::copy_op(v(1), v(9)))),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        assert!(run(&mut m));
        assert_eq!(m.items.len(), 3);
        assert!(matches!(
            &m.items[1],
            VItem::Inst(VInst {
                op: VOp::AluI { rd, rs1, imm: 1, .. },
                ..
            }) if *rd == v(1) && *rs1 == v(1)
        ));
    }

    #[test]
    fn multi_use_temporary_is_not_coalesced() {
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Add,
                rd: v(9),
                rs1: v(1),
                imm: 1,
            })),
            VItem::Inst(VInst::always(util::copy_op(v(1), v(9)))),
            VItem::Inst(VInst::always(VOp::CopyToPhys {
                dst: patmos_isa::Reg::R1,
                src: v(9),
            })),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        run(&mut m);
        // v9 has two uses; the defining add must still target v9.
        assert!(matches!(
            &m.items[1],
            VItem::Inst(VInst {
                op: VOp::AluI { rd, .. },
                ..
            }) if *rd == v(9)
        ));
    }

    #[test]
    fn forwards_through_copies_until_redefinition() {
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(util::copy_op(v(2), v(1)))),
            VItem::Inst(VInst::always(VOp::CopyToPhys {
                dst: patmos_isa::Reg::R3,
                src: v(2),
            })),
            VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 9 })),
            VItem::Inst(VInst::always(VOp::CopyToPhys {
                dst: patmos_isa::Reg::R4,
                src: v(2),
            })),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        assert!(run(&mut m));
        let src_of = |idx: usize| match &m.items[idx] {
            VItem::Inst(VInst {
                op: VOp::CopyToPhys { src, .. },
                ..
            }) => *src,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(src_of(2), v(1), "forwarded before the redefinition");
        assert_eq!(src_of(4), v(2), "not forwarded past the redefinition");
    }

    #[test]
    fn guarded_copy_is_left_alone() {
        let guard = patmos_isa::Guard::when(patmos_isa::Pred::P1);
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(9), imm: 7 })),
            VItem::Inst(VInst::new(guard, util::copy_op(v(1), v(9)))),
            VItem::Inst(VInst::always(VOp::CopyToPhys {
                dst: patmos_isa::Reg::R1,
                src: v(1),
            })),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        run(&mut m);
        // The guarded merge copy must survive, and v1's use must not be
        // rewritten to v9.
        assert_eq!(m.items.len(), 5);
        assert!(matches!(
            &m.items[3],
            VItem::Inst(VInst {
                op: VOp::CopyToPhys { src, .. },
                ..
            }) if *src == v(1)
        ));
    }
}
