//! Common-subexpression elimination (block-local, with store-to-load
//! forwarding).
//!
//! Within a basic block, pure computations — ALU results, immediate
//! loads, symbol addresses, and memory loads — are numbered by the
//! expression they compute; a later instruction computing the same
//! expression is replaced with the canonical copy from the first
//! result. The big win is the repeated address arithmetic of array
//! accesses (`lil base; shl scaled; add addr; load`), which the
//! tree-walking code generator re-emits for every subscript.
//!
//! Loads are invalidated conservatively by any store or call. A
//! word-sized store makes the stored value available to a matching
//! later load (store-to-load forwarding); sub-word stores do not (the
//! loaded value would be truncated).

use patmos_isa::{AccessSize, AluOp, MemArea};
use patmos_lir::{VItem, VModule, VOp, VReg};

use crate::util::{self, commutative, copy_op};
use std::collections::HashMap;

/// A pure expression over current register values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Alu(AluOp, VReg, VReg),
    AluImm(AluOp, VReg, i16),
    Imm(u32),
    Sym(String),
    Load(MemArea, AccessSize, VReg, i16),
}

impl Key {
    /// Whether the expression reads register `d`.
    fn reads(&self, d: VReg) -> bool {
        match *self {
            Key::Alu(_, a, b) => a == d || b == d,
            Key::AluImm(_, a, _) => a == d,
            Key::Load(_, _, a, _) => a == d,
            Key::Imm(_) | Key::Sym(_) => false,
        }
    }

    /// The expression computed by `op`, if it is CSE-able. When
    /// `imm_keys` is false, expressions embedding an immediate are not
    /// numbered: matching them makes code *shape* depend on literal
    /// *values*, which single-path mode forbids (two compilations
    /// differing only in a constant must emit the same instruction
    /// sequence).
    fn of(op: &VOp, imm_keys: bool) -> Option<Key> {
        match op {
            VOp::AluR {
                op,
                rd: _,
                rs1,
                rs2,
            } => {
                if *op == AluOp::Add && rs2.is_zero() {
                    return None; // copies belong to copy-prop
                }
                let (a, b) = if commutative(*op) && rs2.id() < rs1.id() {
                    (*rs2, *rs1)
                } else {
                    (*rs1, *rs2)
                };
                Some(Key::Alu(*op, a, b))
            }
            VOp::AluI { op, rs1, imm, .. } if imm_keys => Some(Key::AluImm(*op, *rs1, *imm)),
            VOp::LoadImmLow { imm, .. } if imm_keys => Some(Key::Imm(*imm as i16 as i32 as u32)),
            VOp::LoadImm32 { imm, .. } if imm_keys => Some(Key::Imm(*imm)),
            VOp::LilSym { sym, .. } => Some(Key::Sym(sym.clone())),
            VOp::Load {
                area,
                size,
                ra,
                offset,
                ..
            } => Some(Key::Load(*area, *size, *ra, *offset)),
            _ => None,
        }
    }
}

struct Avail {
    map: HashMap<Key, VReg>,
}

impl Avail {
    fn invalidate_reg(&mut self, d: VReg) {
        self.map.retain(|k, v| *v != d && !k.reads(d));
    }

    fn invalidate_loads(&mut self) {
        self.map.retain(|k, _| !matches!(k, Key::Load(..)));
    }
}

/// Runs the pass over every block of the module.
pub(crate) fn run(module: &mut VModule) -> bool {
    run_with(module, true)
}

/// The shape-stable variant: no immediate-valued expression keys.
pub(crate) fn run_shape_stable(module: &mut VModule) -> bool {
    run_with(module, false)
}

fn run_with(module: &mut VModule, imm_keys: bool) -> bool {
    let mut changed = false;
    for fb in util::function_blocks(&module.items) {
        for block in fb.blocks {
            let mut avail = Avail {
                map: HashMap::new(),
            };
            for idx in block {
                let VItem::Inst(inst) = &mut module.items[idx] else {
                    unreachable!("blocks contain instruction indices only");
                };
                match &inst.op {
                    VOp::Store {
                        area,
                        size,
                        ra,
                        offset,
                        rs,
                    } => {
                        // The store may overwrite any tracked address.
                        let (area, size, ra, offset, rs) = (*area, *size, *ra, *offset, *rs);
                        avail.invalidate_loads();
                        if inst.guard.is_always() && size == AccessSize::Word && !rs.is_zero() {
                            avail.map.insert(Key::Load(area, size, ra, offset), rs);
                        }
                        continue;
                    }
                    VOp::CallFunc(_) => {
                        // The callee may store anywhere.
                        avail.invalidate_loads();
                        continue;
                    }
                    _ => {}
                }
                let Some(d) = inst.op.def() else { continue };
                if !inst.guard.is_always() {
                    avail.invalidate_reg(d);
                    continue;
                }
                let key = Key::of(&inst.op, imm_keys);
                match key {
                    Some(key) => {
                        if let Some(&w) = avail.map.get(&key) {
                            if w != d {
                                inst.op = copy_op(d, w);
                                changed = true;
                            }
                            avail.invalidate_reg(d);
                            // The value stays available in `w` (w ≠ d is
                            // guaranteed: entries mapping to d died when
                            // d was redefined) — unless the expression
                            // itself read the register just overwritten.
                            if !key.reads(d) {
                                avail.map.insert(key, w);
                            }
                        } else {
                            avail.invalidate_reg(d);
                            if !key.reads(d) {
                                avail.map.insert(key, d);
                            }
                        }
                    }
                    None => avail.invalidate_reg(d),
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::as_copy;
    use patmos_lir::VInst;

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    fn module(items: Vec<VItem>) -> VModule {
        VModule {
            data_lines: Vec::new(),
            items,
            entry: "main".into(),
        }
    }

    fn addr_calc(base: u32, scaled: u32, addr: u32, idx: u32) -> Vec<VItem> {
        vec![
            VItem::Inst(VInst::always(VOp::LilSym {
                rd: v(base),
                sym: "a".into(),
            })),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Shl,
                rd: v(scaled),
                rs1: v(idx),
                imm: 2,
            })),
            VItem::Inst(VInst::always(VOp::AluR {
                op: AluOp::Add,
                rd: v(addr),
                rs1: v(base),
                rs2: v(scaled),
            })),
        ]
    }

    #[test]
    fn repeated_address_arithmetic_collapses_to_copies() {
        let mut items = vec![VItem::FuncStart("main".into())];
        items.extend(addr_calc(2, 3, 4, 1));
        items.extend(addr_calc(5, 6, 7, 1));
        items.push(VItem::Inst(VInst::always(VOp::Halt)));
        let mut m = module(items);
        assert!(run(&mut m));
        // The second lil/shl become copies immediately; the dependent
        // add follows once copy-prop has forwarded them (next round).
        for idx in [4, 5] {
            let VItem::Inst(inst) = &m.items[idx] else {
                panic!()
            };
            assert!(
                as_copy(&inst.op).is_some(),
                "item {idx} should be a copy: {inst}"
            );
        }
        crate::copyprop::run(&mut m);
        assert!(run(&mut m), "second round collapses the dependent add");
        let VItem::Inst(inst) = &m.items[6] else {
            panic!()
        };
        assert!(as_copy(&inst.op).is_some(), "{inst}");
    }

    #[test]
    fn store_invalidates_loads_and_forwards_its_value() {
        let load = |rd: u32| {
            VItem::Inst(VInst::always(VOp::Load {
                area: MemArea::Static,
                size: AccessSize::Word,
                rd: v(rd),
                ra: v(1),
                offset: 0,
            }))
        };
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            load(2),
            VItem::Inst(VInst::always(VOp::Store {
                area: MemArea::Static,
                size: AccessSize::Word,
                ra: v(1),
                offset: 0,
                rs: v(3),
            })),
            load(4),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        assert!(run(&mut m));
        // The reload after the store forwards the stored register.
        let VItem::Inst(inst) = &m.items[3] else {
            panic!()
        };
        assert_eq!(as_copy(&inst.op), Some((v(4), v(3))));
    }

    #[test]
    fn redefined_operand_kills_the_expression() {
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Shl,
                rd: v(2),
                rs1: v(1),
                imm: 2,
            })),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Add,
                rd: v(1),
                rs1: v(1),
                imm: 1,
            })),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Shl,
                rd: v(3),
                rs1: v(1),
                imm: 2,
            })),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        assert!(!run(&mut m), "shl of the updated v1 must be recomputed");
    }
}
