//! Loop-invariant code motion (an `opt_level` 2 pass).
//!
//! For every natural loop of the [`patmos_lir::LoopForest`], pure
//! unconditional instructions whose operands are loop-invariant move to
//! the loop's *preheader* — the fall-through position immediately
//! before the `.loopbound`/label items of the header. The generator
//! re-emits symbol loads (`lil`), constants and address arithmetic on
//! every iteration; one hoist pays for the whole trip count.
//!
//! Hoisting an instruction `d = op(uses)` out of loop `L` requires:
//!
//! * the guard is *always* and the op is pure — but not `mfs` (reads
//!   the multiplier state) and not an ABI copy (reads physical state);
//! * a load additionally requires that `L` contains no call and no
//!   store to the same memory area;
//! * `d` has exactly this one definition in `L` and is **not live into
//!   the header** — otherwise a pre-loop value (reachable on the
//!   zero-trip path or read before the def) would be clobbered;
//! * every use is defined outside `L`, or by an instruction already
//!   hoisted in this pass (the invariant closure);
//! * the header's label is branched to only by the loop's own back
//!   edges, so the spot before the header *is* a preheader.
//!
//! Inner loops are processed first; the fixpoint driver re-runs the
//! pass, so an instruction hoisted into an inner preheader (still
//! inside the outer loop) migrates further out on the next round if it
//! is invariant there too. All decisions are structural — opcode,
//! operand identity, dataflow — never literal values, so the pass is
//! part of the shape-stable (single-path) pipeline.

use std::collections::{BTreeMap, HashMap, HashSet};

use patmos_isa::MemArea;
use patmos_lir::{FuncCode, VCfg, VItem, VModule, VOp, VReg};

/// One loop's planned hoists: the items move, in dependency order, to
/// just before `insert_at`. Function and header label ride along for
/// the remark.
struct Hoist {
    insert_at: usize,
    items: Vec<usize>,
    function: String,
    label: String,
}

/// The header's own leading items — label and attached `.loopbound` —
/// via the shared [`patmos_lir::header_lead`] walk. Its `start` is the
/// preheader insertion point: hoisted code must land *below* any
/// earlier label in the run, which is a live side entry (the join
/// label of a branching `if` right before the loop).
fn header_lead<'a>(
    items: &'a [VItem],
    func: &FuncCode<'_>,
    cfg: &VCfg,
    header: usize,
) -> patmos_lir::HeaderLead<'a> {
    patmos_lir::header_lead(items, func.insts[cfg.blocks[header].first].0)
}

fn plan_function(
    items: &[VItem],
    func: &FuncCode<'_>,
    taken: &mut HashSet<usize>,
    hoists: &mut Vec<Hoist>,
) {
    let cfg = patmos_lir::build_vcfg(func, items);
    let dom = patmos_lir::DomTree::build(&cfg);
    let forest = patmos_lir::LoopForest::build_with_dom(&cfg, &dom);
    let liveness = patmos_lir::analyze(func, &cfg);

    // Innermost first: deepest loops claim their instructions before
    // the enclosing ones look.
    let mut order: Vec<usize> = (0..forest.loops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));

    for li in order {
        let lp = &forest.loops[li];
        let Some(label) = header_lead(items, func, &cfg, lp.header).label else {
            continue;
        };
        // Every branch to the header must be one of the loop's own back
        // edges — otherwise the spot before the header is not a
        // preheader.
        let mut proper = true;
        for (pos, (_, inst)) in func.insts.iter().enumerate() {
            if matches!(&inst.op, VOp::BrLabel(l) if l == label)
                && !lp.latches.contains(&cfg.block_of(pos))
            {
                proper = false;
                break;
            }
        }
        if !proper {
            continue;
        }

        // Loop-wide facts: definition counts, stored areas, calls.
        let positions: Vec<usize> = lp
            .blocks
            .iter()
            .flat_map(|&b| cfg.blocks[b].first..cfg.blocks[b].end)
            .collect();
        let mut def_count: HashMap<VReg, u32> = HashMap::new();
        let mut store_areas: HashSet<MemArea> = HashSet::new();
        let mut has_call = false;
        for &pos in &positions {
            let inst = func.insts[pos].1;
            if let Some(d) = inst.op.def() {
                *def_count.entry(d).or_default() += 1;
            }
            match &inst.op {
                VOp::Store { area, .. } => {
                    store_areas.insert(*area);
                }
                VOp::CallFunc(_) => has_call = true,
                _ => {}
            }
        }

        // Invariant closure.
        let mut marked: Vec<usize> = Vec::new(); // positions, program order
        let mut marked_defs: HashSet<VReg> = HashSet::new();
        loop {
            let mut grew = false;
            for &pos in &positions {
                let (item_idx, inst) = (func.insts[pos].0, func.insts[pos].1);
                if taken.contains(&item_idx) || marked.contains(&pos) || !inst.guard.is_always() {
                    continue;
                }
                let hoistable_op = match &inst.op {
                    VOp::Mfs { .. } | VOp::CopyFromPhys { .. } => false,
                    VOp::Load { area, .. } => !has_call && !store_areas.contains(area),
                    op => op.is_pure(),
                };
                if !hoistable_op {
                    continue;
                }
                let Some(d) = inst.op.def() else { continue };
                if def_count.get(&d).copied().unwrap_or(0) != 1
                    || liveness.block_live_in[lp.header].contains(&d)
                {
                    continue;
                }
                let uses_ok = inst.op.uses().into_iter().flatten().all(|u| {
                    def_count.get(&u).copied().unwrap_or(0) == 0
                        || (def_count[&u] == 1 && marked_defs.contains(&u))
                });
                if !uses_ok {
                    continue;
                }
                marked.push(pos);
                marked_defs.insert(d);
                grew = true;
            }
            if !grew {
                break;
            }
        }
        if marked.is_empty() {
            continue;
        }

        // Emit in dependency order: an instruction waits until no
        // not-yet-emitted marked instruction still defines one of its
        // uses.
        marked.sort_unstable();
        let mut ordered: Vec<usize> = Vec::with_capacity(marked.len());
        let mut pending: Vec<usize> = marked.clone();
        while !pending.is_empty() {
            let pending_defs: HashSet<VReg> = pending
                .iter()
                .filter_map(|&p| func.insts[p].1.op.def())
                .collect();
            let ready = pending.iter().position(|&p| {
                func.insts[p]
                    .1
                    .op
                    .uses()
                    .into_iter()
                    .flatten()
                    .all(|u| !pending_defs.contains(&u) || func.insts[p].1.op.def() == Some(u))
            });
            match ready {
                Some(i) => ordered.push(pending.remove(i)),
                None => unreachable!("invariant closure has no def cycles"),
            }
        }

        let item_indices: Vec<usize> = ordered.iter().map(|&p| func.insts[p].0).collect();
        taken.extend(item_indices.iter().copied());
        hoists.push(Hoist {
            insert_at: header_lead(items, func, &cfg, lp.header).start,
            items: item_indices,
            function: func.name.to_string(),
            label: label.to_string(),
        });
    }
}

/// Runs the pass over every function of the module.
pub(crate) fn run(module: &mut VModule, report: &mut crate::OptReport) -> bool {
    let mut taken: HashSet<usize> = HashSet::new();
    let mut hoists: Vec<Hoist> = Vec::new();
    for func in &patmos_lir::split_functions(&module.items) {
        plan_function(&module.items, func, &mut taken, &mut hoists);
    }
    if hoists.is_empty() {
        return false;
    }
    for h in &hoists {
        report.push_remark(patmos_lir::Remark {
            pass: "licm",
            function: h.function.clone(),
            site: Some(h.label.clone()),
            applied: true,
            message: format!(
                "hoisted {} loop-invariant instruction(s) into the preheader",
                h.items.len()
            ),
        });
    }

    let mut insertions: BTreeMap<usize, Vec<VItem>> = BTreeMap::new();
    for h in &hoists {
        let moved: Vec<VItem> = h.items.iter().map(|&i| module.items[i].clone()).collect();
        insertions.entry(h.insert_at).or_default().extend(moved);
    }
    let removed: HashSet<usize> = taken;
    let mut out: Vec<VItem> = Vec::with_capacity(module.items.len());
    for (idx, item) in module.items.drain(..).enumerate() {
        if let Some(mut hoisted) = insertions.remove(&idx) {
            out.append(&mut hoisted);
        }
        if removed.contains(&idx) {
            continue;
        }
        out.push(item);
    }
    module.items = out;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::{AccessSize, AluOp, CmpOp, Guard, Pred, Reg};
    use patmos_lir::{VInst, VItem, VOp};

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    fn inst(op: VOp) -> VItem {
        VItem::Inst(VInst::always(op))
    }

    /// `for (i = 0; i < 8; i++) { s += tab[i]; }` as the generator
    /// spells it: the `lil` base reload sits inside the loop.
    fn loop_with_invariant_base() -> VModule {
        VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                inst(VOp::LoadImmLow { rd: v(1), imm: 0 }), // i
                inst(VOp::LoadImmLow { rd: v(2), imm: 0 }), // s
                VItem::LoopBound { min: 1, max: 9 },
                VItem::Label("main_head1".into()),
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(1),
                    imm: 8,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_exit2".into()),
                )),
                inst(VOp::LilSym {
                    rd: v(3),
                    sym: "tab".into(),
                }), // invariant
                inst(VOp::AluI {
                    op: AluOp::Shl,
                    rd: v(4),
                    rs1: v(1),
                    imm: 2,
                }), // variant (uses i)
                inst(VOp::AluR {
                    op: AluOp::Add,
                    rd: v(5),
                    rs1: v(3),
                    rs2: v(4),
                }),
                inst(VOp::Load {
                    area: MemArea::Static,
                    size: AccessSize::Word,
                    rd: v(6),
                    ra: v(5),
                    offset: 0,
                }),
                inst(VOp::AluR {
                    op: AluOp::Add,
                    rd: v(2),
                    rs1: v(2),
                    rs2: v(6),
                }),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(1),
                    rs1: v(1),
                    imm: 1,
                }),
                inst(VOp::BrLabel("main_head1".into())),
                VItem::Label("main_exit2".into()),
                inst(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: v(2),
                }),
                inst(VOp::Halt),
            ],
        }
    }

    #[test]
    fn invariant_symbol_load_is_hoisted_to_the_preheader() {
        let mut m = loop_with_invariant_base();
        assert!(run(&mut m, &mut crate::OptReport::default()));
        // The lil must now precede the .loopbound.
        let lil_at = m
            .items
            .iter()
            .position(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::LilSym { .. },
                        ..
                    })
                )
            })
            .expect("lil survives");
        let bound_at = m
            .items
            .iter()
            .position(|i| matches!(i, VItem::LoopBound { .. }))
            .expect("bound survives");
        assert!(lil_at < bound_at, "{}", m.render());
        // Variant address math stays inside.
        let shl_at = m
            .items
            .iter()
            .position(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::AluI { op: AluOp::Shl, .. },
                        ..
                    })
                )
            })
            .expect("shl survives");
        assert!(shl_at > bound_at, "{}", m.render());
        // A second run finds nothing new.
        assert!(!run(&mut m, &mut crate::OptReport::default()));
    }

    #[test]
    fn stores_in_the_loop_pin_same_area_loads() {
        let mut m = loop_with_invariant_base();
        // Add a store to the static area inside the loop (after the
        // accumulating add, before the increment).
        m.items.insert(
            12,
            inst(VOp::Store {
                area: MemArea::Static,
                size: AccessSize::Word,
                ra: v(3),
                offset: 0,
                rs: v(2),
            }),
        );
        assert!(
            run(&mut m, &mut crate::OptReport::default()),
            "the lil still hoists"
        );
        let load_at = m
            .items
            .iter()
            .position(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::Load { .. },
                        ..
                    })
                )
            })
            .expect("load survives");
        let bound_at = m
            .items
            .iter()
            .position(|i| matches!(i, VItem::LoopBound { .. }))
            .expect("bound survives");
        assert!(load_at > bound_at, "load must stay inside:\n{}", m.render());
    }

    #[test]
    fn hoisted_code_lands_below_a_side_entry_label() {
        // A branching if's join label sits directly before the loop's
        // `.loopbound`/label run; the `(!p6) br` into it is a live side
        // entry. Hoisted code must land *after* that label, or the
        // taken path skips it (a real miscompile this reproduces).
        let mut m = loop_with_invariant_base();
        m.items.splice(
            3..3,
            vec![
                VItem::Inst(VInst::always(VOp::CmpI {
                    op: CmpOp::Eq,
                    pd: Pred::P6,
                    rs1: v(9),
                    imm: 1,
                })),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_join9".into()),
                )),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(9),
                    rs1: v(9),
                    imm: 7,
                }),
                VItem::Label("main_join9".into()),
            ],
        );
        assert!(run(&mut m, &mut crate::OptReport::default()));
        let join_at = m
            .items
            .iter()
            .position(|i| matches!(i, VItem::Label(l) if l == "main_join9"))
            .expect("join label survives");
        let lil_at = m
            .items
            .iter()
            .position(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::LilSym { .. },
                        ..
                    })
                )
            })
            .expect("lil survives");
        let bound_at = m
            .items
            .iter()
            .position(|i| matches!(i, VItem::LoopBound { .. }))
            .expect("bound survives");
        assert!(
            join_at < lil_at && lil_at < bound_at,
            "hoist must sit between the side entry and the loop:\n{}",
            m.render()
        );
    }

    #[test]
    fn live_in_register_is_never_clobbered() {
        // v7 is read at the loop head before being rewritten inside:
        // hoisting its (otherwise invariant-looking) redefinition would
        // clobber the pre-loop value.
        let mut m = VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                inst(VOp::LoadImmLow { rd: v(7), imm: 3 }),
                inst(VOp::LoadImmLow { rd: v(1), imm: 0 }),
                VItem::Label("main_head1".into()),
                inst(VOp::AluR {
                    op: AluOp::Add,
                    rd: v(1),
                    rs1: v(1),
                    rs2: v(7),
                }),
                inst(VOp::LoadImmLow { rd: v(7), imm: 9 }),
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(1),
                    imm: 40,
                }),
                VItem::Inst(VInst::new(
                    Guard::when(Pred::P6),
                    VOp::BrLabel("main_head1".into()),
                )),
                inst(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: v(1),
                }),
                inst(VOp::Halt),
            ],
        };
        let before = m.render();
        assert!(
            !run(&mut m, &mut crate::OptReport::default()),
            "nothing may hoist:\n{before}"
        );
    }
}
