//! Bounded full unrolling of constant-trip-count loops (an
//! `opt_level` 2 pass) and **partial unrolling** of loops the full
//! scheme cannot touch (`opt_level` 3).
//!
//! A counted `while` loop in the generator's shape —
//!
//! ```text
//!         li  vi = C0          ← induction start, found in the
//!         .loopbound min max     fall-through predecessor
//! head:
//!         cmpilt p6 = vi, K    ← header: compare + exit branch only
//!         (!p6) br exit          (K may also be a register)
//!         …body…               ← may contain internal control flow
//!         addi vi = vi, S      ← the only def of vi, in the latch
//!         br head
//! exit:
//! ```
//!
//! — runs exactly `T = ⌈(K−C0)/S⌉` (or `+1` for `<=`) iterations when
//! `C0`, `K` and `S` are all compile-time constants. Three schemes
//! apply, tried in this order per loop:
//!
//! 1. **Full unrolling** (level 2): when `T·|body|` fits the size
//!    budget the loop is replaced by `T` verbatim copies of the body;
//!    compare, branches, labels and the `.loopbound` disappear, and the
//!    scalar fixpoint folds the induction variable to per-copy
//!    constants.
//! 2. **Divisor partial unrolling** (level 3): a constant-trip loop
//!    over budget keeps its compare and branches but its body is
//!    replicated `U` times, for the largest `U ≥ 2` dividing `T` with
//!    `U·|body|` within budget. Every copy keeps the induction update,
//!    so after `U` copies the header test is exact again — `U | T`
//!    means the loop can never exit mid-group. The `.loopbound`
//!    tightens to `T/U + 1` header executions.
//! 3. **Remainder partial unrolling** (level 3): a *runtime*-trip loop
//!    (register bound, or an unknown induction start) with a
//!    straight-line body is split into a main loop running groups of
//!    `U ∈ {4, 2}` iterations while at least `U` remain — the guard
//!    compares against `K − (U−1)·S`, computed into a fresh register in
//!    the preheader when `K` is a register — and a scalar remainder
//!    loop (the original, relabelled) that finishes the last `< U`
//!    iterations. Works for any runtime trip count, including zero.
//!
//! Eligibility, beyond the shape above:
//!
//! * the body leaves the loop only through the header's exit branch —
//!   no `ret`, no branch to an outside label (so every iteration runs
//!   the latch, and the group structure is exact);
//! * if the body touches the scratch exit predicate `p6`, its first
//!   touch must be an unconditional definition ahead of all internal
//!   control flow — a body that *read* the header compare's value
//!   would see a stale predicate once the compare is gone (full
//!   unrolling) or a differently-biased one (partial);
//! * full unrolling additionally requires the loop to be innermost and
//!   either nested or memory-free (a duplicated top-level body mostly
//!   buys a longer cold method-cache fill); the partial schemes keep
//!   the loop and amortise its control overhead instead, so they run
//!   on top-level memory loops — `dotprod`, `cnt` — too.
//!
//! Only innermost loops rewrite in one call; the driver re-runs the
//! fixpoint in between, so a nest unrolls inside-out while each step
//! re-checks the budget against the already-flattened body. All three
//! schemes read the literal values `C0`, `K` and `S`, so they are
//! **not** shape-stable and never run in single-path mode.

use std::collections::HashSet;

use patmos_isa::{AluOp, CmpOp, Pred};
use patmos_lir::{FuncCode, VCfg, VInst, VItem, VModule, VOp, VReg};
use patmos_regalloc::{PressureEstimate, PressureModel};

use crate::{LoopUnroll, UnrollKind};

/// Largest number of instructions a fully unrolled loop (or one
/// replicated partial-unroll body group) may occupy.
const UNROLL_BUDGET: usize = 256;
/// Largest trip count considered for full unrolling.
const MAX_TRIP: i64 = 64;
/// The `cmpi` immediate is 11-bit signed; adjusted bounds must fit.
const CMPI_IMM_RANGE: std::ops::RangeInclusive<i64> = -1024..=1023;

/// How the compare bounds the induction variable.
#[derive(Clone, Copy)]
enum BoundSrc {
    /// `cmpi<op> pd = vi, K` — a literal bound.
    Imm(i16),
    /// `cmp<op> pd = vi, vK` — a register bound (runtime trip count).
    Reg(VReg),
}

/// One recognised counted loop, in module item-index space, with the
/// facts the three unrolling schemes decide on.
struct Plan {
    /// First item of the loop's leading `.loopbound`/label run.
    start: usize,
    /// The `exit:` label item (inclusive end of the replaced span).
    end: usize,
    /// Body item range: everything after the header's exit branch up to
    /// (excluding) the back branch — instructions *and* internal labels.
    body: std::ops::Range<usize>,
    /// The header's own label.
    head_label: String,
    /// The exit label.
    exit_label: String,
    /// The header compare (`Lt` or `Le`).
    cmp_op: CmpOp,
    /// The exit predicate the header compare defines.
    pd: Pred,
    /// The induction variable.
    vi: VReg,
    /// The loop bound operand.
    bound: BoundSrc,
    /// The induction step (positive).
    step: i64,
    /// Instructions in the body (labels excluded).
    body_insts: usize,
    /// Whether the body touches memory or calls.
    has_memory: bool,
    /// Memory operations in the body (they serialise on the single
    /// memory port, capping how much replication can pack).
    mem_ops: usize,
    /// Whether a multiply reads a value carried around the back edge
    /// (an `a = a * k + …` recurrence): its copies chain through the
    /// multiplier and replication packs nothing.
    carried_mul: bool,
    /// Distinct virtual registers the body references — the register
    /// pressure proxy the linear-scan policy's estimate compares
    /// against its cap: replicating a wide body invites the
    /// post-unroll CSE to stretch live ranges until the allocator
    /// spills in the hot loop.
    distinct_vregs: usize,
    /// Maximum simultaneously live values across the body — the
    /// measure the loop-aware policy's estimate uses: it assigns by
    /// liveness, so only genuine overlap costs registers.
    max_live: usize,
    /// Whether the body is straight-line (no internal labels or
    /// branches) — required by the remainder scheme.
    single_block: bool,
    /// Exact trip count, when start value and bound are constants.
    trips: Option<i64>,
    /// Nesting depth (1 = outermost).
    depth: u32,
    /// The loop's `.loopbound` annotation, when present.
    bound_ann: Option<(u32, u32)>,
}

/// Matches `inst` as the unconditional branch `br <label>`.
fn as_back_branch(inst: &VInst) -> Option<&str> {
    match &inst.op {
        VOp::BrLabel(l) if inst.guard.is_always() => Some(l),
        _ => None,
    }
}

/// Whether `op` writes predicate `p`.
fn defines_pred(op: &VOp, p: Pred) -> bool {
    matches!(
        op,
        VOp::Cmp { pd, .. } | VOp::CmpI { pd, .. } | VOp::PredSet { pd, .. } if *pd == p
    )
}

/// Whether `inst` reads predicate `p` (as a guard or combination input).
fn uses_pred(inst: &VInst, p: Pred) -> bool {
    (!inst.guard.is_always() && inst.guard.pred == p)
        || matches!(&inst.op, VOp::PredSet { p1, p2, .. } if p1.pred == p || p2.pred == p)
}

/// The constant reaching definition of `vi` at the loop entry: the last
/// def of `vi` among the instructions that fall through into the
/// header, which must be an unconditional immediate load or the
/// canonical zero copy. Gives up at the first label (another block) or
/// non-instruction item.
fn entry_constant(items: &[VItem], loop_start: usize, vi: VReg) -> Option<i64> {
    for item in items[..loop_start].iter().rev() {
        let VItem::Inst(inst) = item else { return None };
        if inst.op.def() == Some(vi) {
            if !inst.guard.is_always() {
                return None;
            }
            return match inst.op {
                VOp::LoadImmLow { imm, .. } => Some(imm as i16 as i64),
                VOp::LoadImm32 { imm, .. } => Some(imm as i32 as i64),
                // The canonical zero copy `add vi = vz, vz` — what the
                // scalar passes leave behind for `i = 0`.
                _ => match crate::util::as_copy(&inst.op) {
                    Some((_, src)) if src.is_zero() => Some(0),
                    _ => None,
                },
            };
        }
    }
    None
}

/// Trip count of `for (vi = c0; vi <op> k; vi += s)`, when every
/// intermediate value stays within `i32` (the compare is signed).
fn trip_count(c0: i64, k: i64, op: CmpOp, s: i64) -> Option<i64> {
    if s <= 0 {
        return None;
    }
    let trips = match op {
        CmpOp::Lt if c0 < k => (k - c0 + s - 1) / s,
        CmpOp::Le if c0 <= k => (k - c0) / s + 1,
        _ => return None,
    };
    let last = c0 + trips * s;
    if i32::try_from(last).is_err() {
        return None;
    }
    Some(trips)
}

fn plan_loop(
    items: &[VItem],
    func: &FuncCode<'_>,
    cfg: &VCfg,
    lp: &patmos_lir::NaturalLoop,
) -> Option<Plan> {
    // Shape: contiguous blocks, the single latch laid out last.
    let h = lp.header;
    let latch = *lp.latches.first()?;
    if lp.latches.len() != 1 || latch < h {
        return None;
    }
    let span: Vec<usize> = (h..=latch).collect();
    if lp.blocks != span {
        return None;
    }
    let hb = &cfg.blocks[h];
    let lb = &cfg.blocks[latch];

    // Header: `cmp(i)<lt|le> p6 = vi, K` then `(!p6) br exit`.
    if hb.end - hb.first != 2 {
        return None;
    }
    let cmp = func.insts[hb.first].1;
    let br = func.insts[hb.first + 1].1;
    let (cmp_op, pd, vi, bound) = match cmp.op {
        VOp::CmpI {
            op: op @ (CmpOp::Lt | CmpOp::Le),
            pd,
            rs1,
            imm,
        } => (op, pd, rs1, BoundSrc::Imm(imm)),
        VOp::Cmp {
            op: op @ (CmpOp::Lt | CmpOp::Le),
            pd,
            rs1,
            rs2,
        } if rs2 != rs1 => (op, pd, rs1, BoundSrc::Reg(rs2)),
        _ => return None,
    };
    if !cmp.guard.is_always() || pd != Pred::P6 {
        return None;
    }
    let VOp::BrLabel(exit_label) = &br.op else {
        return None;
    };
    if !(br.guard.negate && br.guard.pred == pd) {
        return None;
    }

    // Latch ends with the unconditional back branch; the exit label
    // follows immediately.
    let head_label = as_back_branch(func.insts[lb.end - 1].1)?;
    let back_item = func.insts[lb.end - 1].0;
    let end = back_item + 1;
    if !matches!(&items[end], VItem::Label(l) if l == exit_label) {
        return None;
    }

    // Both loop labels must be private: the back branch is the only way
    // to the header, the exit branch the only way to the exit.
    for (pos, (_, inst)) in func.insts.iter().enumerate() {
        if let VOp::BrLabel(l) = &inst.op {
            if l == head_label && pos != lb.end - 1 {
                return None;
            }
            if l == exit_label && pos != hb.first + 1 {
                return None;
            }
        }
    }

    // The body: item span between the exit branch and the back branch.
    let body_start = func.insts[hb.first + 1].0 + 1;
    let body = body_start..back_item;
    let internal_labels: HashSet<&str> = items[body.clone()]
        .iter()
        .filter_map(|i| match i {
            VItem::Label(l) => Some(l.as_str()),
            _ => None,
        })
        .collect();

    // Walk the body: exits, the induction variable, the scratch
    // predicate discipline, memory traffic, bound invariance.
    let mut step: Option<i64> = None;
    let mut body_insts = 0usize;
    let mut has_memory = false;
    let mut mem_ops = 0usize;
    let mut carried_mul = false;
    let mut vregs: HashSet<VReg> = HashSet::new();
    let mut defined: HashSet<VReg> = HashSet::new();
    let mut flow_seen = false; // a label or branch so far
    let mut p6_defined = false;
    for item in &items[body.clone()] {
        match item {
            VItem::LoopBound { .. } => return None, // never: innermost
            VItem::Label(_) => flow_seen = true,
            VItem::FuncStart(_) => unreachable!("span is within one function"),
            VItem::Inst(inst) => {
                body_insts += 1;
                match &inst.op {
                    VOp::Ret | VOp::Halt => return None,
                    VOp::BrLabel(l) => {
                        if !internal_labels.contains(l.as_str()) {
                            return None;
                        }
                        flow_seen = true;
                    }
                    VOp::Load { .. } | VOp::Store { .. } | VOp::CallFunc(_) => {
                        has_memory = true;
                        mem_ops += 1;
                    }
                    VOp::Mul { rs1, rs2 } => {
                        // An operand read before any body definition is
                        // carried around the back edge.
                        for r in [rs1, rs2] {
                            if !r.is_zero() && !defined.contains(r) {
                                carried_mul = true;
                            }
                        }
                    }
                    _ => {}
                }
                vregs.extend(inst.op.uses().into_iter().flatten().chain(inst.op.def()));
                defined.extend(inst.op.def());
                if uses_pred(inst, pd) && !p6_defined {
                    return None;
                }
                if defines_pred(&inst.op, pd) && !flow_seen {
                    p6_defined = true;
                }
                // A register bound must be loop-invariant.
                if let BoundSrc::Reg(k) = bound {
                    if inst.op.def() == Some(k) {
                        return None;
                    }
                }
                if inst.op.def() == Some(vi) {
                    // Exactly one def, the canonical increment, in the
                    // latch block (runs once per completed iteration).
                    match inst.op {
                        VOp::AluI {
                            op: AluOp::Add,
                            rs1,
                            imm,
                            ..
                        } if rs1 == vi && inst.guard.is_always() && step.is_none() && imm > 0 => {
                            step = Some(imm as i64);
                        }
                        _ => return None,
                    }
                }
            }
        }
    }
    // Maximum simultaneous liveness across the body: a backward scan
    // seeded with the values carried around the back edge (the
    // induction variable and a register bound). Treating a multi-block
    // body as straight-line over-approximates liveness across its
    // internal joins — the safe direction for a pressure measure.
    let mut live: HashSet<VReg> = HashSet::new();
    live.insert(vi);
    if let BoundSrc::Reg(k) = bound {
        live.insert(k);
    }
    let mut max_live = live.len();
    for item in items[body.clone()].iter().rev() {
        if let VItem::Inst(inst) = item {
            if let Some(d) = inst.op.def() {
                live.remove(&d);
            }
            for u in inst.op.uses().into_iter().flatten() {
                if !u.is_zero() {
                    live.insert(u);
                }
            }
            max_live = max_live.max(live.len());
        }
    }

    // The increment must sit in the latch block.
    let latch_items: HashSet<usize> = (lb.first..lb.end).map(|pos| func.insts[pos].0).collect();
    let inc_in_latch = items[body.clone()].iter().enumerate().any(|(off, item)| {
        matches!(item, VItem::Inst(inst) if inst.op.def() == Some(vi))
            && latch_items.contains(&(body.start + off))
    });
    if !inc_in_latch {
        return None;
    }

    // Span bookkeeping via the shared header-lead walk: the replaced
    // span starts at the header's own label and its `.loopbound` — and
    // nothing more. A *second* label in the run (the join label of a
    // branching `if` right before the loop) is a live branch target
    // that must survive the splice; it also marks a side entry, so the
    // constant scan below (which starts at `start` and stops at any
    // label) never looks past it either.
    let lead = patmos_lir::header_lead(items, func.insts[hb.first].0);
    let start = lead.start;
    let bound_ann = lead.bound;

    let step = step?;
    let c0 = entry_constant(items, start, vi);
    let trips = match (bound, c0) {
        (BoundSrc::Imm(k), Some(c0)) => trip_count(c0, k as i64, cmp_op, step),
        _ => None,
    };
    if body_insts == 0 {
        return None;
    }
    Some(Plan {
        start,
        end,
        body,
        head_label: head_label.to_string(),
        exit_label: exit_label.clone(),
        cmp_op,
        pd,
        vi,
        bound,
        step,
        body_insts,
        has_memory,
        mem_ops,
        carried_mul,
        distinct_vregs: vregs.len(),
        max_live,
        single_block: internal_labels.is_empty() && !flow_seen,
        trips,
        depth: lp.depth,
        bound_ann,
    })
}

/// The rewrite chosen for one planned loop.
enum Scheme {
    /// Replace the loop by `trips` straight-line body copies.
    Full { trips: i64 },
    /// Keep the loop; replicate the body `factor` times (`factor`
    /// divides the trip count).
    Divisor { factor: i64, trips: i64 },
    /// Main loop of `factor`-iteration groups plus a scalar remainder
    /// loop.
    Remainder { factor: i64 },
}

/// Replicating a body that exceeds the allocation policy's pressure
/// cap invites spills inside the hot loop — a catastrophic trade. The
/// estimate comes from [`patmos_regalloc::Constraints::pressure_estimate`]:
/// the linear-scan policy counts distinct body registers (eager reuse
/// makes every named temporary a potential extra live value), the
/// loop-aware policy counts maximum simultaneous liveness.
fn pressure_refusal(plan: &Plan, pressure: PressureEstimate) -> Option<String> {
    if pressure.body_fits(plan.distinct_vregs, plan.max_live) {
        return None;
    }
    Some(match pressure.model {
        PressureModel::DistinctVregs => format!(
            "body references {} distinct registers (cap {}): replication would invite spills",
            plan.distinct_vregs, pressure.cap
        ),
        PressureModel::MaxLive => format!(
            "body keeps {} values live at once (cap {}): replication would invite spills",
            plan.max_live, pressure.cap
        ),
    })
}

/// Whether replicating `plan`'s body `factor`-fold pays: the cycles
/// saved on loop overhead and dual-issue packing across `trips`
/// iterations must beat the cost of the added code (a longer cold
/// method-cache fill; amortised when the loop is nested and its
/// function stays resident).
fn replication_pays(plan: &Plan, factor: i64, trips: i64, added_insts: i64) -> bool {
    // Per skipped header: the compare, the exit branch and the mostly
    // empty branch shadows (~3 cycles); straight-line bodies
    // additionally let copies pack into the second issue slot, capped
    // by the single memory port — unless a multiply recurrence chains
    // the copies through the multiplier, in which case replication
    // packs nothing.
    let packing = if plan.single_block && !plan.carried_mul {
        (plan.body_insts / 2).saturating_sub(plan.mem_ops).min(3) as i64
    } else {
        0
    };
    let per_iter = 3 + packing;
    let savings = trips * (factor - 1) / factor * per_iter;
    let growth = if plan.depth >= 2 {
        added_insts / 2
    } else {
        added_insts * 3 / 2
    };
    // A third of margin: these are estimates, and a marginal
    // replication is not worth the code.
    savings * 3 > growth * 4
}

/// Whether `plan` is a loop the `sched_level` 2 modulo scheduler can
/// take further than replication can: one straight-line block (the
/// pipeliner's shape requirement), memory traffic to hide (a pure-ALU
/// body gains more from replication's dual-issue packing than from
/// overlap), no multiply recurrence (it fixes the recurrence `MII` at
/// the full chain latency), and enough worst-case trips to fill and
/// pay for a multi-stage pipeline.
fn pipeliner_can_take(plan: &Plan) -> bool {
    const MIN_PIPELINE_TRIPS: i64 = 8;
    let expected_trips = plan
        .trips
        .or_else(|| plan.bound_ann.map(|(_, max)| max.saturating_sub(1) as i64));
    plan.single_block
        && plan.has_memory
        && !plan.carried_mul
        && expected_trips.is_some_and(|t| t >= MIN_PIPELINE_TRIPS)
}

/// Picks the scheme for `plan`. `Err(Some(message))` is a refusal
/// worth a `--remarks` line (a canonical loop the cost model or a
/// budget turned down); `Err(None)` leaves the loop alone silently
/// (partial unrolling is off, or the loop is one this pass created).
fn choose_scheme(
    plan: &Plan,
    partial: bool,
    defer_pipelineable: bool,
    pressure: PressureEstimate,
) -> Result<Scheme, Option<String>> {
    // Full unrolling: small constant trip within budget; top-level
    // loops only when memory-free (duplicating a once-run memory body
    // mostly lengthens the cold method-cache fill).
    if let Some(trips) = plan.trips {
        if trips > 0
            && trips <= MAX_TRIP
            && trips as usize * plan.body_insts <= UNROLL_BUDGET
            && (plan.depth >= 2 || !plan.has_memory)
        {
            return Ok(Scheme::Full { trips });
        }
        if !partial {
            return Err(Some(format!(
                "constant trip {trips} not fully unrolled ({} body instructions, budget \
                 {UNROLL_BUDGET}{}); partial unrolling needs opt_level 3",
                plan.body_insts,
                if plan.depth < 2 && plan.has_memory {
                    ", memory ops at top level"
                } else {
                    ""
                },
            )));
        }
        if defer_pipelineable && pipeliner_can_take(plan) {
            return Err(Some(format!(
                "constant trip {trips} left for the software pipeliner (replication would \
                 serialise its memory chain)"
            )));
        }
        if let Some(message) = pressure_refusal(plan, pressure) {
            return Err(Some(message));
        }
        // Divisor partial unrolling: the largest *proper* factor
        // dividing the trip count that stays within budget and pays
        // for its code growth — a factor equal to the trip count would
        // be a full unroll wearing a loop costume, dodging the gate
        // above.
        if trips >= 4 {
            let max_u = (UNROLL_BUDGET / plan.body_insts) as i64;
            let factor = (2..=max_u.min(trips - 1))
                .rev()
                .filter(|u| trips % u == 0)
                .find(|&u| replication_pays(plan, u, trips, (u - 1) * plan.body_insts as i64));
            return match factor {
                Some(factor) => Ok(Scheme::Divisor { factor, trips }),
                None => Err(Some(format!(
                    "no paying divisor of trip count {trips} ({} body instructions, budget \
                     {UNROLL_BUDGET})",
                    plan.body_insts
                ))),
            };
        }
        return Err(Some(format!(
            "constant trip {trips} below the divisor-unroll threshold 4"
        )));
    }
    if !partial {
        return Err(None);
    }
    if !plan.single_block {
        return Err(Some(
            "runtime-trip loop has internal control flow; remainder unrolling needs a \
             straight-line body"
                .into(),
        ));
    }
    if defer_pipelineable && pipeliner_can_take(plan) {
        return Err(Some(
            "runtime-trip loop left for the software pipeliner (replication would serialise \
             its memory chain)"
                .into(),
        ));
    }
    if let Some(message) = pressure_refusal(plan, pressure) {
        return Err(Some(message));
    }
    // Remainder partial unrolling for runtime trip counts. Never
    // re-unroll a main or remainder loop this pass created.
    if plan.head_label.ends_with("_pu") || plan.head_label.ends_with("_rem") {
        return Err(None);
    }
    let Some(expected_trips) = plan.bound_ann.map(|(_, max)| max.saturating_sub(1)) else {
        return Err(Some(
            "runtime-trip loop has no .loopbound annotation to size the main loop against".into(),
        ));
    };
    for factor in [4i64, 2] {
        if factor as usize * plan.body_insts > UNROLL_BUDGET {
            continue;
        }
        // The main loop should run at least a couple of groups at the
        // annotated worst case, or the guard never pays for itself.
        if (expected_trips as i64) < 2 * factor {
            continue;
        }
        // The adjusted bound must still encode: folded into the
        // `cmpi` immediate for a literal bound, or as the preheader
        // `addi`'s 12-bit immediate for a register bound.
        match plan.bound {
            BoundSrc::Imm(k) => {
                let adjusted = k as i64 - (factor - 1) * plan.step;
                if !CMPI_IMM_RANGE.contains(&adjusted) {
                    continue;
                }
            }
            BoundSrc::Reg(_) => {
                if (factor - 1) * plan.step > 2047 {
                    continue;
                }
            }
        }
        // Main copies plus the relabelled remainder loop.
        let added = factor * plan.body_insts as i64 + 4;
        if !replication_pays(plan, factor, expected_trips as i64, added) {
            continue;
        }
        return Ok(Scheme::Remainder { factor });
    }
    Err(Some(format!(
        "no remainder-unroll factor pays: expected trips {expected_trips}, {} body \
         instructions (budget {UNROLL_BUDGET})",
        plan.body_insts
    )))
}

/// The largest virtual-register id in use (fresh registers are
/// allocated past it).
fn max_vreg(items: &[VItem]) -> u32 {
    let mut max = 0u32;
    for item in items {
        if let VItem::Inst(inst) = item {
            for r in inst.op.uses().into_iter().flatten().chain(inst.op.def()) {
                max = max.max(r.id());
            }
        }
    }
    max
}

/// Replicates `body` `copies` times, uniquifying internal labels (and
/// the branches to them) with `prefix{copy}_`.
fn replicate(body: &[VItem], copies: i64, prefix: &str) -> Vec<VItem> {
    let mut out = Vec::with_capacity(body.len() * copies as usize);
    for copy in 0..copies {
        for item in body {
            out.push(match item {
                VItem::Label(l) => VItem::Label(format!("{prefix}{copy}_{l}")),
                VItem::Inst(VInst {
                    guard,
                    op: VOp::BrLabel(l),
                }) => VItem::Inst(VInst::new(
                    *guard,
                    VOp::BrLabel(format!("{prefix}{copy}_{l}")),
                )),
                other => other.clone(),
            });
        }
    }
    out
}

/// Unrolls every eligible *innermost* loop once; returns whether the
/// module changed. The driver re-runs the scalar fixpoint before
/// calling again, so outer loops are reconsidered against their
/// flattened bodies. With `partial`, loops the full scheme cannot
/// handle get the divisor or remainder treatment (`opt_level` 3).
/// Every rewrite is recorded in `report.unrolls`, and both rewrites and
/// cost-model refusals become remarks.
pub(crate) fn run(
    module: &mut VModule,
    partial: bool,
    defer_pipelineable: bool,
    pressure: PressureEstimate,
    report: &mut crate::OptReport,
) -> bool {
    let mut plans: Vec<(String, Plan, Scheme)> = Vec::new();
    // Loops with a proven constant trip count that stay loops still
    // get their `.loopbound` *min* raised to the exact header-execution
    // count: `min` never shapes code, but it rides through to the WCET
    // analysis, where it proves a software-pipelined loop's short-trip
    // fallback dead (the guard provably passes).
    let mut tightens: Vec<(String, String, usize, u32)> = Vec::new();
    for func in &patmos_lir::split_functions(&module.items) {
        let cfg = patmos_lir::build_vcfg(func, &module.items);
        let forest = patmos_lir::LoopForest::build(&cfg);
        for (li, lp) in forest.loops.iter().enumerate() {
            let innermost = !forest.loops.iter().any(|other| other.parent == Some(li));
            if !innermost {
                continue;
            }
            if let Some(plan) = plan_loop(&module.items, func, &cfg, lp) {
                match choose_scheme(&plan, partial, defer_pipelineable, pressure) {
                    Ok(scheme) => plans.push((func.name.to_string(), plan, scheme)),
                    refused => {
                        if let Err(Some(message)) = refused {
                            report.push_remark(patmos_lir::Remark {
                                pass: "unroll",
                                function: func.name.to_string(),
                                site: Some(plan.head_label.clone()),
                                applied: false,
                                message,
                            });
                        }
                        if let (Some(trips), Some((min, max))) = (plan.trips, plan.bound_ann) {
                            let exact = trips as u32 + 1;
                            if min < exact && exact <= max {
                                tightens.push((
                                    func.name.to_string(),
                                    plan.head_label.clone(),
                                    plan.start,
                                    exact,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    if plans.is_empty() && tightens.is_empty() {
        return false;
    }

    // In-place single-item rewrites first: they shift no indices, so
    // the spliced plans below stay valid.
    for (function, site, at, exact) in tightens {
        let VItem::LoopBound { max, .. } = module.items[at] else {
            unreachable!("plan.start points at the recorded .loopbound");
        };
        module.items[at] = VItem::LoopBound { min: exact, max };
        report.push_remark(patmos_lir::Remark {
            pass: "unroll",
            function,
            site: Some(site),
            applied: true,
            message: format!(
                "constant trip count {}: .loopbound min tightened to {exact} header executions",
                exact - 1
            ),
        });
    }

    let mut next_vreg = max_vreg(&module.items) + 1;

    // Rewrite back to front so earlier spans stay valid.
    plans.sort_by_key(|(_, p, _)| std::cmp::Reverse(p.start));
    for (function, plan, scheme) in plans {
        let (kind, factor, trips) = match &scheme {
            Scheme::Full { trips } => (UnrollKind::Full, *trips, Some(*trips)),
            Scheme::Divisor { factor, trips } => (UnrollKind::Divisor, *factor, Some(*trips)),
            Scheme::Remainder { factor } => (UnrollKind::Remainder, *factor, None),
        };
        report.push_remark(patmos_lir::Remark {
            pass: "unroll",
            function,
            site: Some(plan.head_label.clone()),
            applied: true,
            message: match trips {
                Some(trips) => format!(
                    "{kind} unroll by {factor} (trip count {trips}, {} body instructions, \
                     budget {UNROLL_BUDGET})",
                    plan.body_insts
                ),
                None => format!(
                    "{kind} unroll by {factor} ({} body instructions, budget {UNROLL_BUDGET})",
                    plan.body_insts
                ),
            },
        });
        let body: Vec<VItem> = module.items[plan.body.clone()].to_vec();
        match scheme {
            Scheme::Full { trips } => {
                report.unrolls.push(LoopUnroll {
                    label: plan.head_label.clone(),
                    kind: UnrollKind::Full,
                    factor: trips as u32,
                    trips: Some(trips as u32),
                });
                let unrolled = replicate(&body, trips, "u");
                module.items.splice(plan.start..=plan.end, unrolled);
            }
            Scheme::Divisor { factor, trips } => {
                report.unrolls.push(LoopUnroll {
                    label: plan.head_label.clone(),
                    kind: UnrollKind::Divisor,
                    factor: factor as u32,
                    trips: Some(trips as u32),
                });
                // Keep the original header and branches; replace the
                // body with `factor` copies and tighten the bound —
                // exactly, on both sides: the trip count is a proven
                // constant and the factor divides it.
                let new_max = (trips / factor + 1) as u32;
                let mut out: Vec<VItem> = vec![VItem::LoopBound {
                    min: new_max,
                    max: new_max,
                }];
                // Header label + compare + exit branch, verbatim.
                out.push(VItem::Label(plan.head_label.clone()));
                let hdr_at = module.items[plan.start..]
                    .iter()
                    .position(|i| matches!(i, VItem::Inst(_)))
                    .expect("header compare exists")
                    + plan.start;
                out.push(module.items[hdr_at].clone());
                out.push(module.items[hdr_at + 1].clone());
                out.extend(replicate(&body, factor, "pu"));
                out.push(VItem::Inst(VInst::always(VOp::BrLabel(
                    plan.head_label.clone(),
                ))));
                out.push(VItem::Label(plan.exit_label.clone()));
                module.items.splice(plan.start..=plan.end, out);
            }
            Scheme::Remainder { factor } => {
                report.unrolls.push(LoopUnroll {
                    label: plan.head_label.clone(),
                    kind: UnrollKind::Remainder,
                    factor: factor as u32,
                    trips: None,
                });
                let (_, max_ann) = plan.bound_ann.expect("remainder scheme requires a bound");
                let main_label = format!("{}_pu", plan.head_label);
                let rem_label = format!("{}_rem", plan.head_label);
                let adjust = (factor - 1) * plan.step;
                let mut out: Vec<VItem> = Vec::new();
                // Guard bound: `K − (U−1)·S`, folded into the immediate
                // or computed once into a fresh register.
                let main_cmp = match plan.bound {
                    BoundSrc::Imm(k) => VOp::CmpI {
                        op: plan.cmp_op,
                        pd: plan.pd,
                        rs1: plan.vi,
                        imm: (k as i64 - adjust) as i16,
                    },
                    BoundSrc::Reg(k) => {
                        let kp = VReg::new(next_vreg);
                        next_vreg += 1;
                        out.push(VItem::Inst(VInst::always(VOp::AluI {
                            op: AluOp::Add,
                            rd: kp,
                            rs1: k,
                            imm: (-adjust) as i16,
                        })));
                        VOp::Cmp {
                            op: plan.cmp_op,
                            pd: plan.pd,
                            rs1: plan.vi,
                            rs2: kp,
                        }
                    }
                };
                let exit_guard = patmos_isa::Guard::unless(plan.pd);
                // Main loop: groups of `factor` iterations.
                out.push(VItem::LoopBound {
                    min: 1,
                    max: max_ann.saturating_sub(1) / factor as u32 + 1,
                });
                out.push(VItem::Label(main_label.clone()));
                out.push(VItem::Inst(VInst::always(main_cmp)));
                out.push(VItem::Inst(VInst::new(
                    exit_guard,
                    VOp::BrLabel(rem_label.clone()),
                )));
                out.extend(replicate(&body, factor, "pu"));
                out.push(VItem::Inst(VInst::always(VOp::BrLabel(main_label))));
                // Remainder loop: the original loop, relabelled.
                out.push(VItem::LoopBound {
                    min: 1,
                    max: (factor as u32).min(max_ann),
                });
                out.push(VItem::Label(rem_label.clone()));
                let hdr_at = module.items[plan.start..]
                    .iter()
                    .position(|i| matches!(i, VItem::Inst(_)))
                    .expect("header compare exists")
                    + plan.start;
                out.push(module.items[hdr_at].clone());
                out.push(module.items[hdr_at + 1].clone());
                out.extend(body.iter().cloned());
                out.push(VItem::Inst(VInst::always(VOp::BrLabel(rem_label))));
                out.push(VItem::Label(plan.exit_label.clone()));
                module.items.splice(plan.start..=plan.end, out);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::{Guard, Reg};

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    fn inst(op: VOp) -> VItem {
        VItem::Inst(VInst::always(op))
    }

    fn run_full(m: &mut VModule) -> bool {
        run(
            m,
            false,
            false,
            PressureEstimate::default(),
            &mut crate::OptReport::default(),
        )
    }

    fn run_partial(m: &mut VModule) -> (bool, Vec<LoopUnroll>) {
        let mut report = crate::OptReport::default();
        let changed = run(m, true, false, PressureEstimate::default(), &mut report);
        (changed, report.unrolls)
    }

    fn run_partial_deferring(m: &mut VModule) -> (bool, Vec<LoopUnroll>) {
        let mut report = crate::OptReport::default();
        let changed = run(m, true, true, PressureEstimate::default(), &mut report);
        (changed, report.unrolls)
    }

    /// An inner counted loop `for (i = 0; i < 5; i++) { s = s + i; }`
    /// nested in an outer counted loop, in the generator's shape.
    fn nested_counted_loop() -> VModule {
        VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                inst(VOp::LoadImmLow { rd: v(8), imm: 0 }), // outer i
                inst(VOp::LoadImmLow { rd: v(2), imm: 0 }), // s
                VItem::LoopBound { min: 1, max: 3 },
                VItem::Label("main_head9".into()),
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(8),
                    imm: 2,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_exit9".into()),
                )),
                inst(VOp::LoadImmLow { rd: v(1), imm: 0 }), // inner i
                VItem::LoopBound { min: 1, max: 6 },
                VItem::Label("main_head1".into()),
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(1),
                    imm: 5,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_exit2".into()),
                )),
                inst(VOp::AluR {
                    op: AluOp::Add,
                    rd: v(2),
                    rs1: v(2),
                    rs2: v(1),
                }),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(1),
                    rs1: v(1),
                    imm: 1,
                }),
                inst(VOp::BrLabel("main_head1".into())),
                VItem::Label("main_exit2".into()),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(8),
                    rs1: v(8),
                    imm: 1,
                }),
                inst(VOp::BrLabel("main_head9".into())),
                VItem::Label("main_exit9".into()),
                inst(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: v(2),
                }),
                inst(VOp::Halt),
            ],
        }
    }

    #[test]
    fn inner_counted_loop_fully_unrolls() {
        let mut m = nested_counted_loop();
        assert!(run_full(&mut m));
        // The inner loop's branches are gone; the outer loop's remain.
        let branches = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::BrLabel(_),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(branches, 2, "{}", m.render());
        // Five copies of the accumulate, inside the outer loop.
        let adds = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::AluR { op: AluOp::Add, .. },
                        ..
                    })
                )
            })
            .count();
        assert_eq!(adds, 5, "{}", m.render());
        // The outer loop is now innermost and straight-line: a second
        // round flattens the whole nest (2 × 5 accumulates).
        assert!(run_full(&mut m), "outer loop unrolls next");
        let adds = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::AluR { op: AluOp::Add, .. },
                        ..
                    })
                )
            })
            .count();
        assert_eq!(adds, 10, "{}", m.render());
    }

    /// A top-level pure-compute loop: allowed to unroll (it folds).
    fn pure_toplevel_loop() -> VModule {
        let mut m = nested_counted_loop();
        // Strip the outer loop items, keep the inner one at top level.
        m.items = vec![
            VItem::FuncStart("main".into()),
            inst(VOp::LoadImmLow { rd: v(1), imm: 0 }),
            inst(VOp::LoadImmLow { rd: v(2), imm: 0 }),
            VItem::LoopBound { min: 1, max: 6 },
            VItem::Label("main_head1".into()),
            inst(VOp::CmpI {
                op: CmpOp::Lt,
                pd: Pred::P6,
                rs1: v(1),
                imm: 5,
            }),
            VItem::Inst(VInst::new(
                Guard::unless(Pred::P6),
                VOp::BrLabel("main_exit2".into()),
            )),
            inst(VOp::AluR {
                op: AluOp::Add,
                rd: v(2),
                rs1: v(2),
                rs2: v(1),
            }),
            inst(VOp::AluI {
                op: AluOp::Add,
                rd: v(1),
                rs1: v(1),
                imm: 1,
            }),
            inst(VOp::BrLabel("main_head1".into())),
            VItem::Label("main_exit2".into()),
            inst(VOp::CopyToPhys {
                dst: Reg::R1,
                src: v(2),
            }),
            inst(VOp::Halt),
        ];
        m
    }

    #[test]
    fn toplevel_pure_loop_unrolls_but_memory_loop_does_not() {
        let mut pure = pure_toplevel_loop();
        assert!(run_full(&mut pure), "pure compute folds away, worth it");

        let mut mem = pure_toplevel_loop();
        // Same loop, but the body loads: top level + memory = keep.
        mem.items[7] = inst(VOp::Load {
            area: patmos_isa::MemArea::Static,
            size: patmos_isa::AccessSize::Word,
            rd: v(2),
            ra: v(1),
            offset: 0,
        });
        // The loop survives, but its proven constant trip count still
        // tightens the `.loopbound` min to the exact header count.
        assert!(run_full(&mut mem));
        assert!(
            mem.items
                .iter()
                .any(|i| matches!(i, VItem::LoopBound { min: 6, max: 6 })),
            "{}",
            mem.render()
        );
        assert!(!run_full(&mut mem), "bound tightening is idempotent");
    }

    #[test]
    fn branching_if_in_body_unrolls_with_renamed_labels() {
        let mut m = pure_toplevel_loop();
        // Body: `cmpilt p6 = v2, 9; (!p6) br skip; add; skip:` — a
        // branching if that redefines the scratch predicate first.
        m.items.splice(
            7..7,
            vec![
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(2),
                    imm: 9,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_skip4".into()),
                )),
            ],
        );
        m.items.insert(10, VItem::Label("main_skip4".into()));
        assert!(run_full(&mut m));
        // Five distinct copies of the internal label, each referenced
        // by exactly one branch.
        let labels: Vec<&str> = m
            .items
            .iter()
            .filter_map(|i| match i {
                VItem::Label(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels.len(), 5, "{}", m.render());
        let unique: HashSet<&str> = labels.iter().copied().collect();
        assert_eq!(unique.len(), 5, "labels must be uniquified per copy");
    }

    #[test]
    fn body_reading_stale_exit_predicate_blocks_unrolling() {
        let mut m = pure_toplevel_loop();
        // Body guards an op with p6 *before* any body-local p6 write:
        // it would read the header compare we delete.
        m.items[7] = VItem::Inst(VInst::new(
            Guard::when(Pred::P6),
            VOp::AluR {
                op: AluOp::Add,
                rd: v(2),
                rs1: v(2),
                rs2: v(1),
            },
        ));
        assert!(!run_full(&mut m));
    }

    #[test]
    fn side_entry_label_before_the_loop_blocks_unrolling() {
        // A branching if's join label directly before the loop is a
        // live branch target: the splice must not swallow it, and the
        // induction start cannot be trusted (the side entry bypasses
        // the init — the if may reassign `i`). The safe answer is to
        // leave the loop alone.
        let mut m = pure_toplevel_loop();
        m.items.splice(
            2..2,
            vec![
                inst(VOp::CmpI {
                    op: CmpOp::Eq,
                    pd: Pred::P6,
                    rs1: v(9),
                    imm: 1,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_join9".into()),
                )),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(1),
                    rs1: v(1),
                    imm: 5,
                }),
                VItem::Label("main_join9".into()),
            ],
        );
        assert!(!run_full(&mut m));
        assert!(
            m.items
                .iter()
                .any(|i| matches!(i, VItem::Label(l) if l == "main_join9")),
            "the side-entry label must survive:\n{}",
            m.render()
        );
    }

    #[test]
    fn unknown_start_value_blocks_full_unrolling() {
        let mut m = pure_toplevel_loop();
        // Replace `li i = 0` with a copy from another register.
        m.items[1] = inst(VOp::AluR {
            op: AluOp::Add,
            rd: v(1),
            rs1: v(9),
            rs2: VReg::ZERO,
        });
        assert!(!run_full(&mut m));
    }

    #[test]
    fn oversized_trip_count_blocks_full_unrolling() {
        let mut m = pure_toplevel_loop();
        m.items[5] = inst(VOp::CmpI {
            op: CmpOp::Lt,
            pd: Pred::P6,
            rs1: v(1),
            imm: 999,
        });
        assert!(!run_full(&mut m));
    }

    #[test]
    fn guarded_body_writes_survive_unrolling_verbatim() {
        let mut m = pure_toplevel_loop();
        // A p1-guarded add (what if-conversion produces).
        m.items.insert(
            7,
            VItem::Inst(VInst::new(
                Guard::when(Pred::P1),
                VOp::AluI {
                    op: AluOp::Add,
                    rd: v(2),
                    rs1: v(2),
                    imm: 3,
                },
            )),
        );
        assert!(run_full(&mut m));
        let guarded = m
            .items
            .iter()
            .filter(|i| matches!(i, VItem::Inst(inst) if !inst.guard.is_always()))
            .count();
        assert_eq!(guarded, 5, "one guarded copy per trip: {}", m.render());
    }

    /// A 64-trip constant loop whose full unroll blows the budget with
    /// a padded body; bumped past the per-loop limit by `pad` filler
    /// adds.
    fn overbudget_constant_loop(trip: i16, pad: usize) -> VModule {
        let mut m = pure_toplevel_loop();
        m.items[5] = inst(VOp::CmpI {
            op: CmpOp::Lt,
            pd: Pred::P6,
            rs1: v(1),
            imm: trip,
        });
        m.items[3] = VItem::LoopBound {
            min: 1,
            max: trip as u32 + 1,
        };
        let filler: Vec<VItem> = (0..pad)
            .map(|i| {
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(20 + i as u32),
                    rs1: v(2),
                    imm: 1,
                })
            })
            .collect();
        m.items.splice(7..7, filler);
        m
    }

    #[test]
    fn overbudget_constant_loop_partially_unrolls_by_a_divisor() {
        // 64 trips × 7-inst body = 448 > 256: full unrolling refuses,
        // the divisor scheme unrolls by the largest divisor that both
        // fits the budget and pays for its code growth (16 here — 32
        // would fit the budget but its growth outweighs the removed
        // loop overhead).
        let mut m = overbudget_constant_loop(64, 4);
        // Without partial unrolling the loop stays, but the constant
        // trip count still tightens the `.loopbound` min.
        let mut full_only = m.clone();
        assert!(run_full(&mut full_only));
        assert!(
            full_only
                .items
                .iter()
                .any(|i| matches!(i, VItem::LoopBound { min: 65, max: 65 })),
            "{}",
            full_only.render()
        );
        assert!(!run_full(&mut full_only), "bound tightening is idempotent");
        let (changed, log) = run_partial(&mut m);
        assert!(changed);
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, UnrollKind::Divisor);
        assert_eq!(log[0].factor, 16, "largest paying divisor");
        // The loop survives: one back branch, one exit branch, and the
        // bound tightens to 64/16 + 1 = 5 header executions.
        let branches = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::BrLabel(_),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(branches, 2, "{}", m.render());
        assert!(
            m.items
                .iter()
                .any(|i| matches!(i, VItem::LoopBound { min: 5, max: 5 })),
            "{}",
            m.render()
        );
        // 16 induction updates in the replicated body.
        let incs = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::AluI {
                            op: AluOp::Add,
                            rd,
                            ..
                        },
                        ..
                    }) if *rd == v(1)
                )
            })
            .count();
        assert_eq!(incs, 16, "{}", m.render());
        // A second application finds nothing left to do.
        assert!(!run_partial(&mut m).0, "divisor unrolling is idempotent");
    }

    /// A runtime-trip loop: bound in a register, straight-line body.
    fn runtime_trip_loop() -> VModule {
        let mut m = pure_toplevel_loop();
        m.items[5] = inst(VOp::Cmp {
            op: CmpOp::Lt,
            pd: Pred::P6,
            rs1: v(1),
            rs2: v(9),
        });
        m.items[3] = VItem::LoopBound { min: 1, max: 65 };
        m
    }

    #[test]
    fn runtime_trip_loop_gets_a_main_and_remainder_loop() {
        let mut m = runtime_trip_loop();
        assert!(!run_full(&mut m.clone()), "full unrolling cannot touch it");
        let (changed, log) = run_partial(&mut m);
        assert!(changed, "{}", m.render());
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, UnrollKind::Remainder);
        assert_eq!(log[0].factor, 4);
        let rendered = m.render();
        // The guard bound is computed once into a fresh register.
        assert!(
            m.items.iter().any(|i| matches!(
                i,
                VItem::Inst(VInst {
                    op: VOp::AluI {
                        op: AluOp::Add,
                        imm: -3,
                        ..
                    },
                    ..
                })
            )),
            "preheader computes K - 3*step:\n{rendered}"
        );
        // Two loops: main (4 copies) + remainder (1 copy).
        let labels: Vec<&str> = m
            .items
            .iter()
            .filter_map(|i| match i {
                VItem::Label(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert!(labels.contains(&"main_head1_pu"), "{rendered}");
        assert!(labels.contains(&"main_head1_rem"), "{rendered}");
        let incs = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::AluI {
                            op: AluOp::Add,
                            rd,
                            ..
                        },
                        ..
                    }) if *rd == v(1)
                )
            })
            .count();
        assert_eq!(incs, 5, "4 main copies + 1 remainder: {rendered}");
        // Both loops carry bounds: 64/4 + 1 = 17 and the factor 4.
        assert!(
            m.items
                .iter()
                .any(|i| matches!(i, VItem::LoopBound { min: 1, max: 17 })),
            "{rendered}"
        );
        assert!(
            m.items
                .iter()
                .any(|i| matches!(i, VItem::LoopBound { min: 1, max: 4 })),
            "{rendered}"
        );
        // A second application leaves the created loops alone.
        assert!(!run_partial(&mut m).0, "remainder unrolling is idempotent");
    }

    #[test]
    fn runtime_trip_loop_with_branching_body_is_left_alone() {
        let mut m = runtime_trip_loop();
        m.items.splice(
            7..7,
            vec![
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(2),
                    imm: 9,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_skip4".into()),
                )),
            ],
        );
        m.items.insert(10, VItem::Label("main_skip4".into()));
        assert!(!run_partial(&mut m).0, "remainder needs a single block");
    }

    #[test]
    fn oversized_step_adjustment_falls_back_to_factor_two() {
        // With step 700, the factor-4 adjustment (3·700 = 2100) does
        // not fit the `addi` immediate; factor 2 (700) does. Emitting
        // the unencodable constant used to abort compilation later.
        let mut m = runtime_trip_loop();
        m.items[8] = inst(VOp::AluI {
            op: AluOp::Add,
            rd: v(1),
            rs1: v(1),
            imm: 700,
        });
        let (changed, log) = run_partial(&mut m);
        assert!(changed, "{}", m.render());
        assert_eq!(log[0].factor, 2, "factor 4's adjustment cannot encode");
        assert!(
            m.items.iter().any(|i| matches!(
                i,
                VItem::Inst(VInst {
                    op: VOp::AluI {
                        op: AluOp::Add,
                        imm: -700,
                        ..
                    },
                    ..
                })
            )),
            "preheader computes K - step:\n{}",
            m.render()
        );
    }

    #[test]
    fn memory_loops_are_left_for_the_pipeliner_when_deferring() {
        // A runtime-trip memory loop: remainder unrolling would take
        // it, but with a software pipeliner downstream it stays a
        // plain loop for the modulo scheduler to overlap.
        let mut m = runtime_trip_loop();
        m.items[7] = inst(VOp::Load {
            area: patmos_isa::MemArea::Static,
            size: patmos_isa::AccessSize::Word,
            rd: v(2),
            ra: v(1),
            offset: 0,
        });
        assert!(run_partial(&mut m.clone()).0, "unrolls when not deferring");
        assert!(!run_partial_deferring(&mut m).0, "{}", m.render());

        // An over-budget constant-trip memory loop defers too — but
        // its proven trip count still tightens the `.loopbound` min,
        // which is what proves the pipelined fallback dead later.
        let mut m = overbudget_constant_loop(64, 4);
        m.items[7] = inst(VOp::Load {
            area: patmos_isa::MemArea::Static,
            size: patmos_isa::AccessSize::Word,
            rd: v(20),
            ra: v(1),
            offset: 0,
        });
        let (changed, log) = run_partial_deferring(&mut m);
        assert!(changed, "the min-tightening still applies");
        assert!(log.is_empty(), "no unroll: {}", m.render());
        assert!(
            m.items
                .iter()
                .any(|i| matches!(i, VItem::LoopBound { min: 65, max: 65 })),
            "{}",
            m.render()
        );

        // A pure-ALU loop gains more from replication's dual-issue
        // packing than from overlap: it still unrolls under deferral.
        let mut pure = runtime_trip_loop();
        let (changed, log) = run_partial_deferring(&mut pure);
        assert!(changed);
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, UnrollKind::Remainder);
    }

    #[test]
    fn small_annotated_bound_blocks_remainder_unrolling() {
        let mut m = runtime_trip_loop();
        // At most 3 trips: a factor-2 group loop would barely run.
        m.items[3] = VItem::LoopBound { min: 1, max: 4 };
        assert!(!run_partial(&mut m).0);
    }
}
