//! Bounded full unrolling of constant-trip-count loops (an
//! `opt_level` 2 pass).
//!
//! A counted `while` loop in the generator's shape —
//!
//! ```text
//!         li  vi = C0          ← induction start, found in the
//!         .loopbound min max     fall-through predecessor
//! head:
//!         cmpilt p6 = vi, K    ← header: compare + exit branch only
//!         (!p6) br exit
//!         …body…               ← may contain internal control flow
//!         addi vi = vi, S      ← the only def of vi, in the latch
//!         br head
//! exit:
//! ```
//!
//! — runs exactly `T = ⌈(K−C0)/S⌉` (or `+1` for `<=`) iterations. When
//! `T·|body|` fits the size budget the loop is replaced by `T` verbatim
//! copies of the body: the compare, both loop branches, the loop labels
//! and the `.loopbound` disappear, and internal labels (a branching
//! `if` inside the body) are uniquified per copy. The induction updates
//! are kept in every copy, so register state (including the final `vi`)
//! evolves exactly as the rolled loop would; the scalar fixpoint that
//! re-runs afterwards then rewrites the induction variable to per-copy
//! constants, folds the re-scaled address arithmetic, and CSEs across
//! what used to be iteration boundaries — the induction-variable
//! rewriting step classic unrollers do explicitly falls out of constant
//! propagation here. The DAG scheduler downstream sees a handful of
//! long blocks instead of `T` short ones, which is where the dual-issue
//! packing headroom comes from.
//!
//! Eligibility, beyond the shape above:
//!
//! * the body leaves the loop only through the header's exit branch —
//!   no `ret`, no branch to an outside label (so every iteration runs
//!   the latch, and the trip count is exact);
//! * if the body touches the scratch exit predicate `p6`, its first
//!   touch must be an unconditional definition ahead of all internal
//!   control flow — a body that *read* the header compare's value
//!   would see a stale predicate once the compare is gone;
//! * the loop is innermost, and either nested inside another loop or
//!   free of memory traffic. A top-level loop executes once: unless
//!   its body folds to constants (the pure-compute case), duplicating
//!   it mostly buys a longer cold method-cache fill — measurably a
//!   net loss on small lookup kernels.
//!
//! Only innermost loops unroll in one call; the driver re-runs the
//! fixpoint in between, so a nest unrolls inside-out while each step
//! re-checks the budget against the already-flattened body. The
//! transformation reads the literal values `C0`, `K` and `S`, so it is
//! **not** shape-stable and never runs in single-path mode.

use std::collections::HashSet;

use patmos_isa::{AluOp, CmpOp, Pred};
use patmos_lir::{FuncCode, VCfg, VInst, VItem, VModule, VOp, VReg};

/// Largest number of instructions a fully unrolled loop may occupy.
const UNROLL_BUDGET: usize = 256;
/// Largest trip count considered.
const MAX_TRIP: i64 = 64;

/// One unrollable loop, in module item-index space.
struct Plan {
    /// First item of the loop's leading `.loopbound`/label run.
    start: usize,
    /// The `exit:` label item (inclusive end of the replaced span).
    end: usize,
    /// Body item range: everything after the header's exit branch up to
    /// (excluding) the back branch — instructions *and* internal labels.
    body: std::ops::Range<usize>,
    /// Trip count.
    trips: i64,
}

/// Matches `inst` as the unconditional branch `br <label>`.
fn as_back_branch(inst: &VInst) -> Option<&str> {
    match &inst.op {
        VOp::BrLabel(l) if inst.guard.is_always() => Some(l),
        _ => None,
    }
}

/// Whether `op` writes predicate `p`.
fn defines_pred(op: &VOp, p: Pred) -> bool {
    matches!(
        op,
        VOp::Cmp { pd, .. } | VOp::CmpI { pd, .. } | VOp::PredSet { pd, .. } if *pd == p
    )
}

/// Whether `inst` reads predicate `p` (as a guard or combination input).
fn uses_pred(inst: &VInst, p: Pred) -> bool {
    (!inst.guard.is_always() && inst.guard.pred == p)
        || matches!(&inst.op, VOp::PredSet { p1, p2, .. } if p1.pred == p || p2.pred == p)
}

/// The constant reaching definition of `vi` at the loop entry: the last
/// def of `vi` among the instructions that fall through into the
/// header, which must be an unconditional immediate load or the
/// canonical zero copy. Gives up at the first label (another block) or
/// non-instruction item.
fn entry_constant(items: &[VItem], loop_start: usize, vi: VReg) -> Option<i64> {
    for item in items[..loop_start].iter().rev() {
        let VItem::Inst(inst) = item else { return None };
        if inst.op.def() == Some(vi) {
            if !inst.guard.is_always() {
                return None;
            }
            return match inst.op {
                VOp::LoadImmLow { imm, .. } => Some(imm as i16 as i64),
                VOp::LoadImm32 { imm, .. } => Some(imm as i32 as i64),
                // The canonical zero copy `add vi = vz, vz` — what the
                // scalar passes leave behind for `i = 0`.
                _ => match crate::util::as_copy(&inst.op) {
                    Some((_, src)) if src.is_zero() => Some(0),
                    _ => None,
                },
            };
        }
    }
    None
}

/// Trip count of `for (vi = c0; vi <op> k; vi += s)`, when every
/// intermediate value stays within `i32` (the compare is signed).
fn trip_count(c0: i64, k: i64, op: CmpOp, s: i64) -> Option<i64> {
    if s <= 0 {
        return None;
    }
    let trips = match op {
        CmpOp::Lt if c0 < k => (k - c0 + s - 1) / s,
        CmpOp::Le if c0 <= k => (k - c0) / s + 1,
        _ => return None,
    };
    let last = c0 + trips * s;
    if i32::try_from(last).is_err() {
        return None;
    }
    Some(trips)
}

fn plan_loop(
    items: &[VItem],
    func: &FuncCode<'_>,
    cfg: &VCfg,
    lp: &patmos_lir::NaturalLoop,
) -> Option<Plan> {
    // Shape: contiguous blocks, the single latch laid out last.
    let h = lp.header;
    let latch = *lp.latches.first()?;
    if lp.latches.len() != 1 || latch < h {
        return None;
    }
    let span: Vec<usize> = (h..=latch).collect();
    if lp.blocks != span {
        return None;
    }
    let hb = &cfg.blocks[h];
    let lb = &cfg.blocks[latch];

    // Header: `cmpi<lt|le> p6 = vi, K` then `(!p6) br exit`.
    if hb.end - hb.first != 2 {
        return None;
    }
    let cmp = func.insts[hb.first].1;
    let br = func.insts[hb.first + 1].1;
    let VOp::CmpI {
        op: cmp_op @ (CmpOp::Lt | CmpOp::Le),
        pd,
        rs1: vi,
        imm: k,
    } = cmp.op
    else {
        return None;
    };
    if !cmp.guard.is_always() || pd != Pred::P6 {
        return None;
    }
    let VOp::BrLabel(exit_label) = &br.op else {
        return None;
    };
    if !(br.guard.negate && br.guard.pred == pd) {
        return None;
    }

    // Latch ends with the unconditional back branch; the exit label
    // follows immediately.
    let head_label = as_back_branch(func.insts[lb.end - 1].1)?;
    let back_item = func.insts[lb.end - 1].0;
    let end = back_item + 1;
    if !matches!(&items[end], VItem::Label(l) if l == exit_label) {
        return None;
    }

    // Both loop labels must be private: the back branch is the only way
    // to the header, the exit branch the only way to the exit.
    for (pos, (_, inst)) in func.insts.iter().enumerate() {
        if let VOp::BrLabel(l) = &inst.op {
            if l == head_label && pos != lb.end - 1 {
                return None;
            }
            if l == exit_label && pos != hb.first + 1 {
                return None;
            }
        }
    }

    // The body: item span between the exit branch and the back branch.
    let body_start = func.insts[hb.first + 1].0 + 1;
    let body = body_start..back_item;
    let internal_labels: HashSet<&str> = items[body.clone()]
        .iter()
        .filter_map(|i| match i {
            VItem::Label(l) => Some(l.as_str()),
            _ => None,
        })
        .collect();

    // Walk the body: exits, the induction variable, the scratch
    // predicate discipline, memory traffic.
    let mut step: Option<i64> = None;
    let mut body_insts = 0usize;
    let mut has_memory = false;
    let mut flow_seen = false; // a label or branch so far
    let mut p6_defined = false;
    for item in &items[body.clone()] {
        match item {
            VItem::LoopBound { .. } => return None, // never: innermost
            VItem::Label(_) => flow_seen = true,
            VItem::FuncStart(_) => unreachable!("span is within one function"),
            VItem::Inst(inst) => {
                body_insts += 1;
                match &inst.op {
                    VOp::Ret | VOp::Halt => return None,
                    VOp::BrLabel(l) => {
                        if !internal_labels.contains(l.as_str()) {
                            return None;
                        }
                        flow_seen = true;
                    }
                    VOp::Load { .. } | VOp::Store { .. } | VOp::CallFunc(_) => has_memory = true,
                    _ => {}
                }
                if uses_pred(inst, pd) && !p6_defined {
                    return None;
                }
                if defines_pred(&inst.op, pd) && !flow_seen {
                    p6_defined = true;
                }
                if inst.op.def() == Some(vi) {
                    // Exactly one def, the canonical increment, in the
                    // latch block (runs once per completed iteration).
                    match inst.op {
                        VOp::AluI {
                            op: AluOp::Add,
                            rs1,
                            imm,
                            ..
                        } if rs1 == vi && inst.guard.is_always() && step.is_none() => {
                            step = Some(imm as i64);
                        }
                        _ => return None,
                    }
                }
            }
        }
    }
    // The increment must sit in the latch block.
    let latch_items: HashSet<usize> = (lb.first..lb.end).map(|pos| func.insts[pos].0).collect();
    let inc_in_latch = items[body.clone()].iter().enumerate().any(|(off, item)| {
        matches!(item, VItem::Inst(inst) if inst.op.def() == Some(vi))
            && latch_items.contains(&(body.start + off))
    });
    if !inc_in_latch {
        return None;
    }

    // Span bookkeeping via the shared header-lead walk: the replaced
    // span starts at the header's own label and its `.loopbound` — and
    // nothing more. A *second* label in the run (the join label of a
    // branching `if` right before the loop) is a live branch target
    // that must survive the splice; it also marks a side entry, so the
    // constant scan below (which starts at `start` and stops at any
    // label) never looks past it either.
    let start = patmos_lir::header_lead(items, func.insts[hb.first].0).start;

    let c0 = entry_constant(items, start, vi)?;
    let trips = trip_count(c0, k as i64, cmp_op, step?)?;
    if trips == 0
        || trips > MAX_TRIP
        || trips as usize * body_insts > UNROLL_BUDGET
        || body_insts == 0
    {
        return None;
    }
    // Top-level loops run once: only pure-compute bodies (which fold)
    // are worth the code growth; nested loops amortise it.
    if lp.depth < 2 && has_memory {
        return None;
    }
    Some(Plan {
        start,
        end,
        body,
        trips,
    })
}

/// Unrolls every eligible *innermost* loop once; returns whether the
/// module changed. The driver re-runs the scalar fixpoint before
/// calling again, so outer loops are reconsidered against their
/// flattened bodies.
pub(crate) fn run(module: &mut VModule) -> bool {
    let mut plans: Vec<Plan> = Vec::new();
    for func in &patmos_lir::split_functions(&module.items) {
        let cfg = patmos_lir::build_vcfg(func, &module.items);
        let forest = patmos_lir::LoopForest::build(&cfg);
        for (li, lp) in forest.loops.iter().enumerate() {
            let innermost = !forest.loops.iter().any(|other| other.parent == Some(li));
            if !innermost {
                continue;
            }
            if let Some(plan) = plan_loop(&module.items, func, &cfg, lp) {
                plans.push(plan);
            }
        }
    }
    if plans.is_empty() {
        return false;
    }

    // Rewrite back to front so earlier spans stay valid.
    plans.sort_by_key(|p| std::cmp::Reverse(p.start));
    for plan in plans {
        let body: Vec<VItem> = module.items[plan.body.clone()].to_vec();
        let mut unrolled: Vec<VItem> = Vec::with_capacity(body.len() * plan.trips as usize);
        for copy in 0..plan.trips {
            for item in &body {
                unrolled.push(match item {
                    // Internal labels (and their branches) get one name
                    // per copy.
                    VItem::Label(l) => VItem::Label(format!("u{copy}_{l}")),
                    VItem::Inst(VInst {
                        guard,
                        op: VOp::BrLabel(l),
                    }) => VItem::Inst(VInst::new(*guard, VOp::BrLabel(format!("u{copy}_{l}")))),
                    other => other.clone(),
                });
            }
        }
        module.items.splice(plan.start..=plan.end, unrolled);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::{Guard, Reg};

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    fn inst(op: VOp) -> VItem {
        VItem::Inst(VInst::always(op))
    }

    /// An inner counted loop `for (i = 0; i < 5; i++) { s = s + i; }`
    /// nested in an outer counted loop, in the generator's shape.
    fn nested_counted_loop() -> VModule {
        VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                inst(VOp::LoadImmLow { rd: v(8), imm: 0 }), // outer i
                inst(VOp::LoadImmLow { rd: v(2), imm: 0 }), // s
                VItem::LoopBound { min: 1, max: 3 },
                VItem::Label("main_head9".into()),
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(8),
                    imm: 2,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_exit9".into()),
                )),
                inst(VOp::LoadImmLow { rd: v(1), imm: 0 }), // inner i
                VItem::LoopBound { min: 1, max: 6 },
                VItem::Label("main_head1".into()),
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(1),
                    imm: 5,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_exit2".into()),
                )),
                inst(VOp::AluR {
                    op: AluOp::Add,
                    rd: v(2),
                    rs1: v(2),
                    rs2: v(1),
                }),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(1),
                    rs1: v(1),
                    imm: 1,
                }),
                inst(VOp::BrLabel("main_head1".into())),
                VItem::Label("main_exit2".into()),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(8),
                    rs1: v(8),
                    imm: 1,
                }),
                inst(VOp::BrLabel("main_head9".into())),
                VItem::Label("main_exit9".into()),
                inst(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: v(2),
                }),
                inst(VOp::Halt),
            ],
        }
    }

    #[test]
    fn inner_counted_loop_fully_unrolls() {
        let mut m = nested_counted_loop();
        assert!(run(&mut m));
        // The inner loop's branches are gone; the outer loop's remain.
        let branches = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::BrLabel(_),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(branches, 2, "{}", m.render());
        // Five copies of the accumulate, inside the outer loop.
        let adds = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::AluR { op: AluOp::Add, .. },
                        ..
                    })
                )
            })
            .count();
        assert_eq!(adds, 5, "{}", m.render());
        // The outer loop is now innermost and straight-line: a second
        // round flattens the whole nest (2 × 5 accumulates).
        assert!(run(&mut m), "outer loop unrolls next");
        let adds = m
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VItem::Inst(VInst {
                        op: VOp::AluR { op: AluOp::Add, .. },
                        ..
                    })
                )
            })
            .count();
        assert_eq!(adds, 10, "{}", m.render());
    }

    /// A top-level pure-compute loop: allowed to unroll (it folds).
    fn pure_toplevel_loop() -> VModule {
        let mut m = nested_counted_loop();
        // Strip the outer loop items, keep the inner one at top level.
        m.items = vec![
            VItem::FuncStart("main".into()),
            inst(VOp::LoadImmLow { rd: v(1), imm: 0 }),
            inst(VOp::LoadImmLow { rd: v(2), imm: 0 }),
            VItem::LoopBound { min: 1, max: 6 },
            VItem::Label("main_head1".into()),
            inst(VOp::CmpI {
                op: CmpOp::Lt,
                pd: Pred::P6,
                rs1: v(1),
                imm: 5,
            }),
            VItem::Inst(VInst::new(
                Guard::unless(Pred::P6),
                VOp::BrLabel("main_exit2".into()),
            )),
            inst(VOp::AluR {
                op: AluOp::Add,
                rd: v(2),
                rs1: v(2),
                rs2: v(1),
            }),
            inst(VOp::AluI {
                op: AluOp::Add,
                rd: v(1),
                rs1: v(1),
                imm: 1,
            }),
            inst(VOp::BrLabel("main_head1".into())),
            VItem::Label("main_exit2".into()),
            inst(VOp::CopyToPhys {
                dst: Reg::R1,
                src: v(2),
            }),
            inst(VOp::Halt),
        ];
        m
    }

    #[test]
    fn toplevel_pure_loop_unrolls_but_memory_loop_does_not() {
        let mut pure = pure_toplevel_loop();
        assert!(run(&mut pure), "pure compute folds away, worth it");

        let mut mem = pure_toplevel_loop();
        // Same loop, but the body loads: top level + memory = keep.
        mem.items[7] = inst(VOp::Load {
            area: patmos_isa::MemArea::Static,
            size: patmos_isa::AccessSize::Word,
            rd: v(2),
            ra: v(1),
            offset: 0,
        });
        assert!(!run(&mut mem));
    }

    #[test]
    fn branching_if_in_body_unrolls_with_renamed_labels() {
        let mut m = pure_toplevel_loop();
        // Body: `cmpilt p6 = v2, 9; (!p6) br skip; add; skip:` — a
        // branching if that redefines the scratch predicate first.
        m.items.splice(
            7..7,
            vec![
                inst(VOp::CmpI {
                    op: CmpOp::Lt,
                    pd: Pred::P6,
                    rs1: v(2),
                    imm: 9,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_skip4".into()),
                )),
            ],
        );
        m.items.insert(10, VItem::Label("main_skip4".into()));
        assert!(run(&mut m));
        // Five distinct copies of the internal label, each referenced
        // by exactly one branch.
        let labels: Vec<&str> = m
            .items
            .iter()
            .filter_map(|i| match i {
                VItem::Label(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels.len(), 5, "{}", m.render());
        let unique: HashSet<&str> = labels.iter().copied().collect();
        assert_eq!(unique.len(), 5, "labels must be uniquified per copy");
    }

    #[test]
    fn body_reading_stale_exit_predicate_blocks_unrolling() {
        let mut m = pure_toplevel_loop();
        // Body guards an op with p6 *before* any body-local p6 write:
        // it would read the header compare we delete.
        m.items[7] = VItem::Inst(VInst::new(
            Guard::when(Pred::P6),
            VOp::AluR {
                op: AluOp::Add,
                rd: v(2),
                rs1: v(2),
                rs2: v(1),
            },
        ));
        assert!(!run(&mut m));
    }

    #[test]
    fn side_entry_label_before_the_loop_blocks_unrolling() {
        // A branching if's join label directly before the loop is a
        // live branch target: the splice must not swallow it, and the
        // induction start cannot be trusted (the side entry bypasses
        // the init — the if may reassign `i`). The safe answer is to
        // leave the loop alone.
        let mut m = pure_toplevel_loop();
        m.items.splice(
            2..2,
            vec![
                inst(VOp::CmpI {
                    op: CmpOp::Eq,
                    pd: Pred::P6,
                    rs1: v(9),
                    imm: 1,
                }),
                VItem::Inst(VInst::new(
                    Guard::unless(Pred::P6),
                    VOp::BrLabel("main_join9".into()),
                )),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(1),
                    rs1: v(1),
                    imm: 5,
                }),
                VItem::Label("main_join9".into()),
            ],
        );
        assert!(!run(&mut m));
        assert!(
            m.items
                .iter()
                .any(|i| matches!(i, VItem::Label(l) if l == "main_join9")),
            "the side-entry label must survive:\n{}",
            m.render()
        );
    }

    #[test]
    fn unknown_start_value_blocks_unrolling() {
        let mut m = pure_toplevel_loop();
        // Replace `li i = 0` with a copy from another register.
        m.items[1] = inst(VOp::AluR {
            op: AluOp::Add,
            rd: v(1),
            rs1: v(9),
            rs2: VReg::ZERO,
        });
        assert!(!run(&mut m));
    }

    #[test]
    fn oversized_trip_count_blocks_unrolling() {
        let mut m = pure_toplevel_loop();
        m.items[5] = inst(VOp::CmpI {
            op: CmpOp::Lt,
            pd: Pred::P6,
            rs1: v(1),
            imm: 999,
        });
        assert!(!run(&mut m));
    }

    #[test]
    fn guarded_body_writes_survive_unrolling_verbatim() {
        let mut m = pure_toplevel_loop();
        // A p1-guarded add (what if-conversion produces).
        m.items.insert(
            7,
            VItem::Inst(VInst::new(
                Guard::when(Pred::P1),
                VOp::AluI {
                    op: AluOp::Add,
                    rd: v(2),
                    rs1: v(2),
                    imm: 3,
                },
            )),
        );
        assert!(run(&mut m));
        let guarded = m
            .items
            .iter()
            .filter(|i| matches!(i, VItem::Inst(inst) if !inst.guard.is_always()))
            .count();
        assert_eq!(guarded, 5, "one guarded copy per trip: {}", m.render());
    }
}
