//! Shared pass infrastructure: block discovery, constant tracking,
//! instruction builders, and item removal.

use std::collections::{BTreeSet, HashMap};
use std::ops::Range;

use patmos_isa::AluOp;
use patmos_lir::{VInst, VItem, VOp, VReg};

/// One function's basic blocks, in item-index space.
pub(crate) struct FuncBlocks {
    /// The function's item range (starting at its `FuncStart`).
    pub(crate) range: Range<usize>,
    /// Each block as the absolute item indices of its instructions,
    /// in layout order.
    pub(crate) blocks: Vec<Vec<usize>>,
}

/// The basic blocks of every function, derived from the shared CFG
/// construction ([`patmos_lir::build_vcfg`]) so the block-local passes
/// and the dataflow analyses agree on block boundaries by
/// construction. The result owns its indices: compute it first, then
/// mutate instructions in place (do not add or remove items while
/// iterating it).
pub(crate) fn function_blocks(items: &[VItem]) -> Vec<FuncBlocks> {
    patmos_lir::split_functions(items)
        .iter()
        .map(|func| {
            let cfg = patmos_lir::build_vcfg(func, items);
            let blocks = cfg
                .blocks
                .iter()
                .filter(|b| b.first < b.end)
                .map(|b| (b.first..b.end).map(|pos| func.insts[pos].0).collect())
                .collect();
            FuncBlocks {
                range: func.item_range.clone(),
                blocks,
            }
        })
        .collect()
}

/// Removes the marked item indices from `items`.
pub(crate) fn remove_marked(items: &mut Vec<VItem>, marked: &BTreeSet<usize>) {
    if marked.is_empty() {
        return;
    }
    let mut idx = 0usize;
    items.retain(|_| {
        let keep = !marked.contains(&idx);
        idx += 1;
        keep
    });
}

/// Whether swapping the operands of `op` preserves the result.
pub(crate) fn commutative(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Nor
    )
}

/// The cheapest materialisation of `value` into `rd`.
pub(crate) fn load_imm(rd: VReg, value: u32) -> VOp {
    if (-32768..=32767).contains(&(value as i32)) {
        VOp::LoadImmLow {
            rd,
            imm: value as u16,
        }
    } else {
        VOp::LoadImm32 { rd, imm: value }
    }
}

/// The canonical register copy `rd = rs, r0`.
pub(crate) fn copy_op(rd: VReg, rs: VReg) -> VOp {
    VOp::AluR {
        op: AluOp::Add,
        rd,
        rs1: rs,
        rs2: VReg::ZERO,
    }
}

/// Whether `op` is the canonical copy, returning its source.
pub(crate) fn as_copy(op: &VOp) -> Option<(VReg, VReg)> {
    match *op {
        VOp::AluR {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        } if rs2.is_zero() && !rd.is_zero() => Some((rd, rs1)),
        _ => None,
    }
}

/// Block-local constant values of virtual registers. Only values
/// written by an unconditional immediate load are known; any other
/// definition of a register forgets it.
#[derive(Default)]
pub(crate) struct Consts {
    map: HashMap<VReg, u32>,
}

impl Consts {
    /// The known value of `v`, if any (the zero alias is always 0).
    pub(crate) fn get(&self, v: VReg) -> Option<u32> {
        if v.is_zero() {
            Some(0)
        } else {
            self.map.get(&v).copied()
        }
    }

    /// Records the effect of `inst` on the tracked constants. Call this
    /// *after* a pass has finished rewriting the instruction.
    pub(crate) fn update(&mut self, inst: &VInst) {
        let Some(d) = inst.op.def() else { return };
        if inst.guard.is_always() {
            match inst.op {
                VOp::LoadImmLow { imm, .. } => {
                    self.map.insert(d, imm as i16 as i32 as u32);
                    return;
                }
                VOp::LoadImm32 { imm, .. } => {
                    self.map.insert(d, imm);
                    return;
                }
                _ => {}
            }
        }
        self.map.remove(&d);
    }
}
