//! Strength reduction of multiplications by known constants.
//!
//! The code generator lowers `a * b` to the `mul rs1, rs2` /
//! `mfs rd = sl` pair (the multiply unit writes the `sl`/`sh` special
//! registers). When one operand is a block-local constant, the pair is
//! replaced:
//!
//! * power of two → a single logical shift left (exact in wrapping
//!   32-bit arithmetic, including by 2³¹),
//! * `0` / `1` → an immediate load / the canonical copy,
//! * both operands constant → the folded immediate load.
//!
//! The rewrite fires only when the `mfs` reading `sl` immediately
//! follows its `mul` (the only pattern the code generator emits) and
//! the function never reads `sh`, so deleting the `mul` cannot starve
//! another consumer of the multiply unit.

use patmos_isa::SpecialReg;
use patmos_lir::{VItem, VModule, VOp, VReg};

use crate::util::{self, copy_op, load_imm, Consts};
use std::collections::BTreeSet;

/// The replacement for `v * c` into `rd`, when one exists.
fn reduce(rd: VReg, v: VReg, c: u32) -> Option<VOp> {
    match c {
        0 => Some(load_imm(rd, 0)),
        1 => Some(copy_op(rd, v)),
        _ if c.is_power_of_two() => Some(VOp::AluI {
            op: patmos_isa::AluOp::Shl,
            rd,
            rs1: v,
            imm: c.trailing_zeros() as i16,
        }),
        _ => None,
    }
}

/// Rewrites the `mul` at item `i` / `mfs sl` at item `j` when an
/// operand is constant, marking the `mul` for deletion.
fn try_reduce_pair(
    module: &mut VModule,
    i: usize,
    j: usize,
    consts: &Consts,
    marked: &mut BTreeSet<usize>,
) {
    let (VItem::Inst(mul), VItem::Inst(mfs)) = (&module.items[i], &module.items[j]) else {
        return;
    };
    let (VOp::Mul { rs1, rs2 }, true) = (&mul.op, mul.guard.is_always()) else {
        return;
    };
    let (
        VOp::Mfs {
            rd,
            ss: SpecialReg::Sl,
        },
        true,
    ) = (&mfs.op, mfs.guard.is_always())
    else {
        return;
    };
    let (rd, rs1, rs2) = (*rd, *rs1, *rs2);
    let replacement = match (consts.get(rs1), consts.get(rs2)) {
        (Some(a), Some(b)) => Some(load_imm(rd, (a as i32).wrapping_mul(b as i32) as u32)),
        (Some(a), None) => reduce(rd, rs2, a),
        (None, Some(b)) => reduce(rd, rs1, b),
        (None, None) => None,
    };
    if let Some(new_op) = replacement {
        let VItem::Inst(mfs) = &mut module.items[j] else {
            unreachable!();
        };
        mfs.op = new_op;
        marked.insert(i);
    }
}

/// Runs the pass over every block of the module.
pub(crate) fn run(module: &mut VModule) -> bool {
    let mut marked: BTreeSet<usize> = BTreeSet::new();
    for fb in util::function_blocks(&module.items) {
        // A consumer of `sh` would observe the deleted `mul`.
        let reads_sh = module.items[fb.range.clone()].iter().any(|item| {
            matches!(
                item,
                VItem::Inst(patmos_lir::VInst {
                    op: VOp::Mfs {
                        ss: SpecialReg::Sh,
                        ..
                    },
                    ..
                })
            )
        });
        if reads_sh {
            continue;
        }
        for block in fb.blocks {
            let mut consts = Consts::default();
            for (w, &i) in block.iter().enumerate() {
                if let Some(&j) = block.get(w + 1) {
                    try_reduce_pair(module, i, j, &consts, &mut marked);
                }
                // A deleted `mul` defines nothing; a rewritten `mfs` is
                // tracked in its new (possibly constant-loading) form.
                let VItem::Inst(inst) = &module.items[i] else {
                    unreachable!("blocks contain instruction indices only");
                };
                consts.update(inst);
            }
        }
    }
    let changed = !marked.is_empty();
    util::remove_marked(&mut module.items, &marked);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::AluOp;
    use patmos_lir::VInst;

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    fn mul_by_const(c: u16) -> VModule {
        VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("main".into()),
                VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: c })),
                VItem::Inst(VInst::always(VOp::Mul {
                    rs1: v(2),
                    rs2: v(1),
                })),
                VItem::Inst(VInst::always(VOp::Mfs {
                    rd: v(3),
                    ss: SpecialReg::Sl,
                })),
                VItem::Inst(VInst::always(VOp::Halt)),
            ],
        }
    }

    #[test]
    fn power_of_two_becomes_shift() {
        let mut m = mul_by_const(8);
        assert!(run(&mut m));
        assert_eq!(m.items.len(), 4, "the mul is gone");
        assert!(matches!(
            &m.items[2],
            VItem::Inst(VInst {
                op: VOp::AluI {
                    op: AluOp::Shl,
                    imm: 3,
                    ..
                },
                ..
            })
        ));
    }

    #[test]
    fn non_power_of_two_is_kept() {
        let mut m = mul_by_const(7);
        assert!(!run(&mut m));
        assert_eq!(m.items.len(), 5);
    }

    #[test]
    fn sh_reader_blocks_the_rewrite() {
        let mut m = mul_by_const(8);
        m.items.insert(
            4,
            VItem::Inst(VInst::always(VOp::Mfs {
                rd: v(4),
                ss: SpecialReg::Sh,
            })),
        );
        assert!(!run(&mut m));
    }

    #[test]
    fn mul_by_one_becomes_copy() {
        let mut m = mul_by_const(1);
        assert!(run(&mut m));
        assert_eq!(
            crate::util::as_copy(match &m.items[2] {
                VItem::Inst(i) => &i.op,
                _ => unreachable!(),
            }),
            Some((v(3), v(2)))
        );
    }
}
