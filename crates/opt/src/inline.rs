//! Size-budgeted function inlining (an `opt_level` 2 pass).
//!
//! Calls are barriers for every downstream stage: the register
//! allocator saves all live values around them, the scheduler's
//! dependence DAG never moves work across them, and the method cache
//! pays a possible miss on both edges. Inlining a small callee removes
//! the barrier and exposes its body to constant propagation, CSE, LICM
//! and the dual-issue scheduler in the caller's context.
//!
//! The pass runs *before* the scalar fixpoint, on raw code-generator
//! output, because it pattern-matches the generator's call protocol
//! exactly:
//!
//! ```text
//! mov r3 = vA        ┐ contiguous argument marshalling
//! mov r4 = vB        ┘
//! call f             ← the site
//! mov vR = r1        ← result capture (always present)
//! ```
//!
//! and, in the callee, the leading parameter homes `mov vP = r3…` plus
//! `mov r1 = vX` before every `ret`. The splice renames the callee's
//! virtual registers past the caller's maximum, uniquifies its labels,
//! rewrites parameter homes to copies from the argument registers,
//! turns return-value writes into writes of a fresh result register,
//! and turns non-trailing `ret`s into branches to a continuation label.
//! `.loopbound` annotations ride along, so the WCET analysis keeps
//! seeing every loop bound.
//!
//! Decisions read only code *shape* (instruction counts, the call
//! graph), never literal values, so the pass is safe for single-path
//! mode's shape-stability contract. Recursive functions (any cycle in
//! the call graph) and the entry function are never inlined; sites
//! whose callee is already call-free are preferred, which makes the
//! overall order bottom-up. After the fixpoint, functions no longer
//! reachable from the entry are dropped from the module.

use std::collections::{HashMap, HashSet};
use std::ops::Range;

use patmos_isa::Reg;
use patmos_lir::{VInst, VItem, VModule, VOp, VReg};

use crate::util::copy_op;

/// Largest callee (in instructions) worth duplicating at a site.
const CALLEE_BUDGET: usize = 48;
/// Stop growing a caller beyond this many instructions.
const CALLER_CAP: usize = 360;
/// Hard cap on splices per module (a runaway backstop; real modules
/// settle after a handful).
const MAX_SPLICES: usize = 64;

/// One function's extent in the item stream.
struct Func {
    name: String,
    /// Items including the `FuncStart`.
    range: Range<usize>,
    insts: usize,
    has_call: bool,
}

fn split(items: &[VItem]) -> Vec<Func> {
    let mut funcs: Vec<Func> = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        match item {
            VItem::FuncStart(name) => {
                if let Some(prev) = funcs.last_mut() {
                    prev.range.end = idx;
                }
                funcs.push(Func {
                    name: name.clone(),
                    range: idx..items.len(),
                    insts: 0,
                    has_call: false,
                });
            }
            VItem::Inst(inst) => {
                if let Some(f) = funcs.last_mut() {
                    f.insts += 1;
                    if matches!(inst.op, VOp::CallFunc(_)) {
                        f.has_call = true;
                    }
                }
            }
            _ => {}
        }
    }
    funcs
}

/// Names of functions on a call-graph cycle (reachable from themselves).
fn recursive_functions(items: &[VItem], funcs: &[Func]) -> HashSet<String> {
    let mut edges: HashMap<&str, HashSet<&str>> = HashMap::new();
    for f in funcs {
        let callees = edges.entry(f.name.as_str()).or_default();
        for item in &items[f.range.clone()] {
            if let VItem::Inst(VInst {
                op: VOp::CallFunc(callee),
                ..
            }) = item
            {
                callees.insert(callee.as_str());
            }
        }
    }
    let mut recursive = HashSet::new();
    for f in funcs {
        // DFS: can `f` reach itself?
        let mut seen: HashSet<&str> = HashSet::new();
        let mut work: Vec<&str> = edges
            .get(f.name.as_str())
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(g) = work.pop() {
            if g == f.name {
                recursive.insert(f.name.clone());
                break;
            }
            if seen.insert(g) {
                if let Some(next) = edges.get(g) {
                    work.extend(next.iter().copied());
                }
            }
        }
    }
    recursive
}

/// An inlinable call site.
struct Site {
    /// Item index of the `CallFunc`.
    call_idx: usize,
    /// Item range of the callee (including its `FuncStart`).
    callee: Range<usize>,
    /// Marshalling-copy item indices to delete, and the argument source
    /// per argument register index (3–6).
    marshal: Vec<usize>,
    args: HashMap<u8, VReg>,
    /// Names for the splice record and remark.
    caller_name: String,
    callee_name: String,
    callee_insts: usize,
}

/// The callee's leading parameter homes: `(item offset within body,
/// destination vreg, argument register index)`.
fn param_homes(items: &[VItem], callee: &Range<usize>) -> Vec<(usize, VReg, u8)> {
    let mut homes = Vec::new();
    for (off, item) in items[callee.start + 1..callee.end].iter().enumerate() {
        match item {
            VItem::Inst(VInst {
                guard,
                op: VOp::CopyFromPhys { dst, src },
            }) if guard.is_always() && (3..=6).contains(&src.index()) => {
                homes.push((off, *dst, src.index()));
            }
            _ => break,
        }
    }
    homes
}

/// Finds the best next site: callees already free of calls first (the
/// bottom-up order), then the first eligible site in item order.
fn find_site(module: &VModule, prefer_leaf: bool) -> Option<Site> {
    let items = &module.items;
    let funcs = split(items);
    let recursive = recursive_functions(items, &funcs);
    let by_name: HashMap<&str, &Func> = funcs.iter().map(|f| (f.name.as_str(), f)).collect();

    for caller in &funcs {
        for idx in caller.range.clone() {
            let VItem::Inst(VInst {
                op: VOp::CallFunc(callee_name),
                ..
            }) = &items[idx]
            else {
                continue;
            };
            let Some(callee) = by_name.get(callee_name.as_str()) else {
                continue;
            };
            if callee.name == module.entry
                || recursive.contains(&callee.name)
                || callee.insts > CALLEE_BUDGET
                || caller.insts + callee.insts > CALLER_CAP
                || (prefer_leaf && callee.has_call)
            {
                continue;
            }
            // The callee must end every path in `ret` (never `halt`),
            // and its protocol instructions must be unconditional: the
            // splice rewrites `ret` and the ABI copies without their
            // guards, which is only sound when there are none. The
            // PatC generator guarantees this (returns and calls are
            // rejected inside predicated regions), but `optimize_with`
            // is a public API over caller-built modules.
            if items[callee.range.clone()].iter().any(|i| match i {
                VItem::Inst(inst) => match inst.op {
                    VOp::Halt => true,
                    VOp::Ret | VOp::CopyToPhys { .. } | VOp::CopyFromPhys { .. } => {
                        !inst.guard.is_always()
                    }
                    _ => false,
                },
                _ => false,
            }) {
                continue;
            }
            // Result capture directly after the call.
            if !matches!(
                items.get(idx + 1),
                Some(VItem::Inst(VInst {
                    op: VOp::CopyFromPhys { src: Reg::R1, .. },
                    ..
                }))
            ) {
                continue;
            }
            // Contiguous marshalling copies directly before the call.
            let mut marshal = Vec::new();
            let mut args: HashMap<u8, VReg> = HashMap::new();
            let mut at = idx;
            while at > caller.range.start {
                at -= 1;
                match &items[at] {
                    VItem::Inst(VInst {
                        guard,
                        op: VOp::CopyToPhys { dst, src },
                    }) if guard.is_always() && (3..=6).contains(&dst.index()) => {
                        marshal.push(at);
                        args.entry(dst.index()).or_insert(*src);
                    }
                    _ => break,
                }
            }
            // Every parameter home must have a marshalled source.
            if param_homes(items, &callee.range)
                .iter()
                .any(|(_, _, reg)| !args.contains_key(reg))
            {
                continue;
            }
            return Some(Site {
                call_idx: idx,
                callee: callee.range.clone(),
                marshal,
                args,
                caller_name: caller.name.clone(),
                callee_name: callee.name.clone(),
                callee_insts: callee.insts,
            });
        }
    }
    None
}

/// Rewrites every virtual register of `inst` (defs and uses) through `f`.
fn remap(inst: &VInst, f: &impl Fn(VReg) -> VReg) -> VInst {
    let mut out = inst.clone();
    out.op.map_uses(f);
    if let Some(d) = out.op.def() {
        out.op.set_def(f(d));
    }
    out
}

fn max_vreg(items: &[VItem]) -> u32 {
    let mut max = 0;
    for item in items {
        if let VItem::Inst(inst) = item {
            if let Some(d) = inst.op.def() {
                max = max.max(d.id());
            }
            for u in inst.op.uses().into_iter().flatten() {
                max = max.max(u.id());
            }
        }
    }
    max
}

/// Splices the callee body over the call site.
fn splice(module: &mut VModule, site: Site, serial: usize) {
    let items = &module.items;
    let base = max_vreg(items);
    let rename = |v: VReg| {
        if v.is_zero() {
            v
        } else {
            VReg::new(base + v.id())
        }
    };
    let retval = VReg::new(base + max_vreg(&items[site.callee.clone()]) + 1);

    let homes = param_homes(items, &site.callee);
    let body = &items[site.callee.start + 1..site.callee.end];
    let last_inst_off = body
        .iter()
        .rposition(|i| matches!(i, VItem::Inst(_)))
        .expect("callee has instructions");
    let cont_label = format!("il{serial}_cont");
    let mut need_cont = false;

    let mut spliced: Vec<VItem> = Vec::with_capacity(body.len() + 2);
    for (off, item) in body.iter().enumerate() {
        match item {
            VItem::Label(l) => spliced.push(VItem::Label(format!("il{serial}_{l}"))),
            VItem::LoopBound { min, max } => spliced.push(VItem::LoopBound {
                min: *min,
                max: *max,
            }),
            VItem::FuncStart(_) => unreachable!("body excludes the FuncStart"),
            VItem::Inst(inst) => {
                if let Some((_, dst, reg)) = homes.iter().find(|(h, _, _)| *h == off) {
                    spliced.push(VItem::Inst(VInst::always(copy_op(
                        rename(*dst),
                        site.args[reg],
                    ))));
                    continue;
                }
                match &inst.op {
                    VOp::CopyToPhys { dst: Reg::R1, src } => {
                        spliced.push(VItem::Inst(VInst::always(copy_op(retval, rename(*src)))));
                    }
                    VOp::Ret => {
                        if off == last_inst_off {
                            // Falls through to the continuation.
                        } else {
                            need_cont = true;
                            spliced
                                .push(VItem::Inst(VInst::always(VOp::BrLabel(cont_label.clone()))));
                        }
                    }
                    VOp::BrLabel(l) => {
                        let mut out = inst.clone();
                        out.op = VOp::BrLabel(format!("il{serial}_{l}"));
                        spliced.push(VItem::Inst(out));
                    }
                    _ => spliced.push(VItem::Inst(remap(inst, &rename))),
                }
            }
        }
    }
    if need_cont {
        spliced.push(VItem::Label(cont_label));
    }

    // The result capture after the call becomes a copy from the fresh
    // return register.
    let result_dst = match &items[site.call_idx + 1] {
        VItem::Inst(VInst {
            op: VOp::CopyFromPhys { dst, src: Reg::R1 },
            ..
        }) => *dst,
        _ => unreachable!("site was validated"),
    };
    spliced.push(VItem::Inst(VInst::always(copy_op(result_dst, retval))));

    // Rebuild: drop the marshalling copies, replace call + capture with
    // the spliced body.
    let remove: HashSet<usize> = site.marshal.iter().copied().collect();
    let mut out: Vec<VItem> = Vec::with_capacity(module.items.len() + spliced.len());
    for (idx, item) in module.items.drain(..).enumerate() {
        if remove.contains(&idx) || idx == site.call_idx + 1 {
            continue;
        }
        if idx == site.call_idx {
            out.append(&mut spliced);
            continue;
        }
        out.push(item);
    }
    module.items = out;
}

/// Drops functions no longer reachable from the entry via `call`.
fn remove_dead_functions(module: &mut VModule) -> bool {
    let funcs = split(&module.items);
    let mut reachable: HashSet<String> = HashSet::new();
    let mut work = vec![module.entry.clone()];
    while let Some(name) = work.pop() {
        if !reachable.insert(name.clone()) {
            continue;
        }
        if let Some(f) = funcs.iter().find(|f| f.name == name) {
            for item in &module.items[f.range.clone()] {
                if let VItem::Inst(VInst {
                    op: VOp::CallFunc(callee),
                    ..
                }) = item
                {
                    work.push(callee.clone());
                }
            }
        }
    }
    let dead: Vec<Range<usize>> = funcs
        .iter()
        .filter(|f| !reachable.contains(&f.name))
        .map(|f| f.range.clone())
        .collect();
    if dead.is_empty() {
        return false;
    }
    let mut idx = 0usize;
    module.items.retain(|_| {
        let drop = dead.iter().any(|r| r.contains(&idx));
        idx += 1;
        !drop
    });
    true
}

/// Why a surviving call site was not inlined — the first failing
/// eligibility check, in [`find_site`]'s order.
fn refusal_reason(module: &VModule, caller: &Func, callee: Option<&Func>, idx: usize) -> String {
    let items = &module.items;
    let Some(callee) = callee else {
        return "callee is external to the module".into();
    };
    let recursive = recursive_functions(items, &split(items));
    if callee.name == module.entry {
        return "callee is the entry function".into();
    }
    if recursive.contains(&callee.name) {
        return "callee is (mutually) recursive".into();
    }
    if callee.insts > CALLEE_BUDGET {
        return format!(
            "callee has {} instructions, over the {CALLEE_BUDGET}-instruction budget",
            callee.insts
        );
    }
    if caller.insts + callee.insts > CALLER_CAP {
        return format!(
            "caller would grow to {} instructions, over the {CALLER_CAP}-instruction cap",
            caller.insts + callee.insts
        );
    }
    if items[callee.range.clone()].iter().any(|i| match i {
        VItem::Inst(inst) => match inst.op {
            VOp::Halt => true,
            VOp::Ret | VOp::CopyToPhys { .. } | VOp::CopyFromPhys { .. } => !inst.guard.is_always(),
            _ => false,
        },
        _ => false,
    }) {
        return "callee halts or has guarded protocol instructions".into();
    }
    if !matches!(
        items.get(idx + 1),
        Some(VItem::Inst(VInst {
            op: VOp::CopyFromPhys { src: Reg::R1, .. },
            ..
        }))
    ) {
        return "call site lacks the generator's result-capture copy".into();
    }
    "call site does not match the generator's marshalling protocol".into()
}

/// Emits a `missed` remark for every call still standing after the
/// splice fixpoint.
fn remark_survivors(module: &VModule, report: &mut crate::OptReport) {
    let funcs = split(&module.items);
    let by_name: HashMap<&str, &Func> = funcs.iter().map(|f| (f.name.as_str(), f)).collect();
    for caller in &funcs {
        for idx in caller.range.clone() {
            let VItem::Inst(VInst {
                op: VOp::CallFunc(callee_name),
                ..
            }) = &module.items[idx]
            else {
                continue;
            };
            let callee = by_name.get(callee_name.as_str()).copied();
            report.push_remark(patmos_lir::Remark {
                pass: "inline",
                function: caller.name.clone(),
                site: Some(callee_name.clone()),
                applied: false,
                message: format!(
                    "call not inlined: {}",
                    refusal_reason(module, caller, callee, idx)
                ),
            });
        }
    }
}

/// Runs the inliner to its own fixed point; returns whether the module
/// changed. Splices and refusals are recorded on `report`.
pub(crate) fn run(module: &mut VModule, report: &mut crate::OptReport) -> bool {
    let mut changed = false;
    for serial in 0..MAX_SPLICES {
        let site = find_site(module, true).or_else(|| find_site(module, false));
        let Some(site) = site else { break };
        report.inlines.push(crate::InlineSplice {
            serial,
            callee: site.callee_name.clone(),
            caller: site.caller_name.clone(),
        });
        report.push_remark(patmos_lir::Remark {
            pass: "inline",
            function: site.caller_name.clone(),
            site: Some(site.callee_name.clone()),
            applied: true,
            message: format!(
                "inlined {} ({} instructions, budget {CALLEE_BUDGET})",
                site.callee_name, site.callee_insts
            ),
        });
        splice(module, site, serial);
        changed = true;
    }
    remark_survivors(module, report);
    if changed {
        remove_dead_functions(module);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_isa::AluOp;

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    fn inst(op: VOp) -> VItem {
        VItem::Inst(VInst::always(op))
    }

    /// `int add1(int x) { return x + 1; } int main() { return add1(5); }`
    fn call_module() -> VModule {
        VModule {
            data_lines: Vec::new(),
            entry: "main".into(),
            items: vec![
                VItem::FuncStart("add1".into()),
                inst(VOp::CopyFromPhys {
                    dst: v(1),
                    src: Reg::R3,
                }),
                inst(VOp::AluI {
                    op: AluOp::Add,
                    rd: v(2),
                    rs1: v(1),
                    imm: 1,
                }),
                inst(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: v(2),
                }),
                inst(VOp::Ret),
                VItem::FuncStart("main".into()),
                inst(VOp::LoadImmLow { rd: v(1), imm: 5 }),
                inst(VOp::CopyToPhys {
                    dst: Reg::R3,
                    src: v(1),
                }),
                inst(VOp::CallFunc("add1".into())),
                inst(VOp::CopyFromPhys {
                    dst: v(2),
                    src: Reg::R1,
                }),
                inst(VOp::CopyToPhys {
                    dst: Reg::R1,
                    src: v(2),
                }),
                inst(VOp::Halt),
            ],
        }
    }

    #[test]
    fn leaf_call_is_inlined_and_callee_dropped() {
        let mut m = call_module();
        assert!(run(&mut m, &mut crate::OptReport::default()));
        assert!(
            !m.items.iter().any(|i| matches!(
                i,
                VItem::Inst(VInst {
                    op: VOp::CallFunc(_),
                    ..
                })
            )),
            "{}",
            m.render()
        );
        assert!(
            !m.items
                .iter()
                .any(|i| matches!(i, VItem::FuncStart(n) if n == "add1")),
            "unreachable callee must be dropped:\n{}",
            m.render()
        );
        // The body arrived: an add-immediate now lives in main.
        assert!(
            m.items.iter().any(|i| matches!(
                i,
                VItem::Inst(VInst {
                    op: VOp::AluI {
                        op: AluOp::Add,
                        imm: 1,
                        ..
                    },
                    ..
                })
            )),
            "{}",
            m.render()
        );
    }

    #[test]
    fn recursive_callee_is_left_alone() {
        let mut m = call_module();
        // Make add1 self-recursive.
        m.items.insert(2, inst(VOp::CallFunc("add1".into())));
        m.items.insert(
            3,
            inst(VOp::CopyFromPhys {
                dst: v(9),
                src: Reg::R1,
            }),
        );
        m.items.insert(
            2,
            inst(VOp::CopyToPhys {
                dst: Reg::R3,
                src: v(1),
            }),
        );
        assert!(!run(&mut m, &mut crate::OptReport::default()));
    }

    #[test]
    fn inlined_code_executes_correctly_end_to_end() {
        // Compile-free check: inline, then interpret the virtual code by
        // hand is overkill here; instead assert the structural contract
        // that the result register copy chain survives.
        let mut m = call_module();
        run(&mut m, &mut crate::OptReport::default());
        let renders = m.render();
        assert!(renders.contains("mov r1 ="), "{renders}");
    }
}
