//! Constant folding and propagation (block-local).
//!
//! Tracks registers holding known immediate values and
//!
//! * folds ALU operations over known operands into immediate loads,
//! * narrows register-register forms to register-immediate forms when a
//!   known operand fits the immediate field,
//! * rewrites operands known to be zero to the hard-wired zero alias,
//! * canonicalises algebraic identities (`x + 0`, `x << 0`, `x & 0`, …)
//!   into the canonical copy or an immediate load, feeding the
//!   copy-propagation and dead-code passes.
//!
//! Definitions under a non-always guard forget the register (the old
//! value may flow through) but their operands are still rewritten — an
//! operand holds the same value whether or not the write is annulled.

use patmos_isa::{AluOp, CmpOp};
use patmos_lir::{VItem, VModule, VOp, VReg};

use crate::util::{self, commutative, copy_op, load_imm, Consts};

/// 12-bit signed ALU immediate range.
const ALU_IMM: std::ops::RangeInclusive<i32> = -2048..=2047;
/// 11-bit signed compare immediate range.
const CMP_IMM: std::ops::RangeInclusive<i32> = -1024..=1023;

/// Whether `x <op> 0 == x`.
fn zero_identity(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor | AluOp::Shl | AluOp::Shr | AluOp::Sra
    )
}

/// Rewrites one operation; returns the replacement if anything changed.
fn rewrite(op: &VOp, consts: &Consts) -> Option<VOp> {
    // Operands known to be zero read the zero register directly.
    let mut zeroed = op.clone();
    zeroed.map_uses(|u| {
        if !u.is_zero() && consts.get(u) == Some(0) {
            VReg::ZERO
        } else {
            u
        }
    });
    let structural = structural_rewrite(&zeroed, consts).unwrap_or(zeroed);
    (structural != *op).then_some(structural)
}

/// The structural rules, applied after zero-operand replacement.
fn structural_rewrite(op: &VOp, consts: &Consts) -> Option<VOp> {
    match *op {
        VOp::AluI {
            op: alu,
            rd,
            rs1,
            imm,
        } => {
            if let Some(a) = consts.get(rs1) {
                return Some(load_imm(rd, alu.apply(a, imm as i32 as u32)));
            }
            if imm == 0 {
                if zero_identity(alu) {
                    return Some(copy_op(rd, rs1));
                }
                if alu == AluOp::And {
                    return Some(load_imm(rd, 0));
                }
            }
            None
        }
        VOp::AluR {
            op: alu,
            rd,
            rs1,
            rs2,
        } => {
            // The canonical copy `add rd = rs1, vz` is final form even
            // when rs1 is constant: folding it back to an immediate
            // load would oscillate with CSE (which rewrites duplicate
            // immediate loads *into* copies). Copy-prop forwards it and
            // DCE removes it instead.
            if alu == AluOp::Add && rs2.is_zero() {
                return None;
            }
            let (c1, c2) = (consts.get(rs1), consts.get(rs2));
            if let (Some(a), Some(b)) = (c1, c2) {
                return Some(load_imm(rd, alu.apply(a, b)));
            }
            // `x <op> 0` — rs2 known-zero became the zero alias during
            // zero replacement above.
            if rs2.is_zero() {
                if zero_identity(alu) {
                    return Some(copy_op(rd, rs1));
                }
                if alu == AluOp::And {
                    return Some(load_imm(rd, 0));
                }
            }
            if rs1.is_zero() && matches!(alu, AluOp::Add | AluOp::Or | AluOp::Xor) {
                return Some(copy_op(rd, rs2));
            }
            if let Some(b) = c2 {
                if ALU_IMM.contains(&(b as i32)) {
                    return Some(VOp::AluI {
                        op: alu,
                        rd,
                        rs1,
                        imm: b as i32 as i16,
                    });
                }
            }
            if let Some(a) = c1 {
                if commutative(alu) && ALU_IMM.contains(&(a as i32)) {
                    return Some(VOp::AluI {
                        op: alu,
                        rd,
                        rs1: rs2,
                        imm: a as i32 as i16,
                    });
                }
            }
            None
        }
        VOp::Cmp {
            op: cmp,
            pd,
            rs1,
            rs2,
        } => {
            if let Some(b) = consts.get(rs2) {
                if CMP_IMM.contains(&(b as i32)) {
                    return Some(VOp::CmpI {
                        op: cmp,
                        pd,
                        rs1,
                        imm: b as i32 as i16,
                    });
                }
            }
            if let Some(a) = consts.get(rs1) {
                if matches!(cmp, CmpOp::Eq | CmpOp::Neq) && CMP_IMM.contains(&(a as i32)) {
                    return Some(VOp::CmpI {
                        op: cmp,
                        pd,
                        rs1: rs2,
                        imm: a as i32 as i16,
                    });
                }
            }
            None
        }
        _ => None,
    }
}

/// Runs the pass over every block of the module.
pub(crate) fn run(module: &mut VModule) -> bool {
    let mut changed = false;
    for fb in util::function_blocks(&module.items) {
        for block in fb.blocks {
            let mut consts = Consts::default();
            for idx in block {
                let VItem::Inst(inst) = &mut module.items[idx] else {
                    unreachable!("blocks contain instruction indices only");
                };
                if let Some(new_op) = rewrite(&inst.op, &consts) {
                    inst.op = new_op;
                    changed = true;
                }
                consts.update(inst);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use patmos_lir::VInst;

    fn v(id: u32) -> VReg {
        VReg::new(id)
    }

    fn module(items: Vec<VItem>) -> VModule {
        VModule {
            data_lines: Vec::new(),
            items,
            entry: "main".into(),
        }
    }

    #[test]
    fn folds_chained_constants() {
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 6 })),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Shl,
                rd: v(2),
                rs1: v(1),
                imm: 2,
            })),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        assert!(run(&mut m));
        assert!(matches!(
            m.items[2],
            VItem::Inst(VInst {
                op: VOp::LoadImmLow { imm: 24, .. },
                ..
            })
        ));
    }

    #[test]
    fn narrows_alur_with_constant_operand() {
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 3 })),
            VItem::Inst(VInst::always(VOp::AluR {
                op: AluOp::Add,
                rd: v(3),
                rs1: v(2),
                rs2: v(1),
            })),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        assert!(run(&mut m));
        assert!(matches!(
            m.items[2],
            VItem::Inst(VInst {
                op: VOp::AluI {
                    op: AluOp::Add,
                    imm: 3,
                    ..
                },
                ..
            })
        ));
    }

    #[test]
    fn guarded_def_forgets_the_constant() {
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(VOp::LoadImmLow { rd: v(1), imm: 0 })),
            VItem::Inst(VInst::new(
                patmos_isa::Guard::when(patmos_isa::Pred::P1),
                VOp::LoadImmLow { rd: v(1), imm: 7 },
            )),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Add,
                rd: v(2),
                rs1: v(1),
                imm: 1,
            })),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        // The add must NOT fold: v1 is 0 or 7 depending on p1.
        run(&mut m);
        assert!(matches!(
            m.items[3],
            VItem::Inst(VInst {
                op: VOp::AluI { .. },
                ..
            })
        ));
    }

    #[test]
    fn canonicalises_add_zero_to_copy() {
        let mut m = module(vec![
            VItem::FuncStart("main".into()),
            VItem::Inst(VInst::always(VOp::AluI {
                op: AluOp::Add,
                rd: v(2),
                rs1: v(1),
                imm: 0,
            })),
            VItem::Inst(VInst::always(VOp::Halt)),
        ]);
        assert!(run(&mut m));
        assert_eq!(
            util::as_copy(match &m.items[1] {
                VItem::Inst(i) => &i.op,
                _ => unreachable!(),
            }),
            Some((v(2), v(1)))
        );
        // Idempotent: the canonical copy is stable.
        assert!(!run(&mut m));
    }
}
